#include "arch/bus.hh"

#include "common/logging.hh"

namespace disc
{

void
Bus::attach(Addr base, Addr size, Device *device)
{
    if (!device)
        panic("attaching null device");
    if (size == 0)
        fatal("device %s mapped with zero size", device->name().c_str());
    std::uint32_t end = static_cast<std::uint32_t>(base) + size;
    if (end > 0x10000u)
        fatal("device %s range wraps the address space",
              device->name().c_str());
    for (const auto &r : ranges_) {
        std::uint32_t rend = static_cast<std::uint32_t>(r.base) + r.size;
        if (base < rend && r.base < end) {
            fatal("device %s overlaps device %s", device->name().c_str(),
                  r.device->name().c_str());
        }
    }
    ranges_.push_back({base, size, device});
}

Device *
Bus::decode(Addr addr, Addr &offset) const
{
    for (const auto &r : ranges_) {
        if (addr >= r.base &&
            static_cast<std::uint32_t>(addr) <
                static_cast<std::uint32_t>(r.base) + r.size) {
            offset = static_cast<Addr>(addr - r.base);
            return r.device;
        }
    }
    return nullptr;
}

AsyncBusInterface::AsyncBusInterface(Bus &bus)
    : bus_(bus)
{}

AsyncBusInterface::Outcome
AsyncBusInterface::request(StreamId stream, Addr addr, bool is_write,
                           Word wdata, int dest_reg)
{
    if (busy_ || immediate_)
        return Outcome::Busy;

    Addr offset = 0;
    Device *dev = bus_.decode(addr, offset);
    if (!dev)
        return Outcome::Fault;

    Completion c;
    c.stream = stream;
    c.isWrite = is_write;
    c.destReg = is_write ? kNoDest : dest_reg;
    c.data = wdata;
    c.addr = addr;

    unsigned latency = dev->latency(offset, is_write);
    if (latency == 0) {
        // Zero-wait-state device: complete in the same cycle.
        if (is_write)
            dev->write(offset, wdata);
        else
            c.data = dev->read(offset);
        ++completed_;
        immediate_ = c;
        return Outcome::Started;
    }

    busy_ = true;
    remaining_ = latency;
    pending_ = c;
    return Outcome::Started;
}

std::optional<AsyncBusInterface::Completion>
AsyncBusInterface::takeImmediate()
{
    auto c = immediate_;
    immediate_.reset();
    return c;
}

AsyncBusInterface::Completion
AsyncBusInterface::finish()
{
    Addr offset = 0;
    Device *dev = bus_.decode(pending_.addr, offset);
    if (!dev)
        panic("device vanished during access at 0x%04x", pending_.addr);
    if (pending_.isWrite)
        dev->write(offset, pending_.data);
    else
        pending_.data = dev->read(offset);
    busy_ = false;
    ++completed_;
    return pending_;
}

std::optional<AsyncBusInterface::Completion>
AsyncBusInterface::advance(Cycle cycles)
{
    if (!busy_ || cycles == 0)
        return std::nullopt;
    if (cycles > remaining_)
        panic("ABI advanced %llu cycles past its completion",
              static_cast<unsigned long long>(cycles - remaining_));
    busyCycles_ += cycles;
    remaining_ -= static_cast<unsigned>(cycles);
    if (remaining_ == 0)
        return finish();
    return std::nullopt;
}

void
Bus::saveDevices(Serializer &out) const
{
    out.put<std::uint32_t>(static_cast<std::uint32_t>(ranges_.size()));
    for (const auto &r : ranges_)
        r.device->save(out);
}

void
Bus::restoreDevices(Deserializer &in)
{
    auto n = in.get<std::uint32_t>();
    if (n != ranges_.size())
        fatal("checkpoint device count mismatch (%u vs %zu)", n,
              ranges_.size());
    for (const auto &r : ranges_)
        r.device->restore(in);
}

void
AsyncBusInterface::save(Serializer &out) const
{
    out.putBool(busy_);
    out.put<std::uint32_t>(remaining_);
    out.put(pending_.stream);
    out.putBool(pending_.isWrite);
    out.put<std::int32_t>(pending_.destReg);
    out.put(pending_.data);
    out.put(pending_.addr);
    out.putBool(immediate_.has_value());
    if (immediate_) {
        out.put(immediate_->stream);
        out.putBool(immediate_->isWrite);
        out.put<std::int32_t>(immediate_->destReg);
        out.put(immediate_->data);
        out.put(immediate_->addr);
    }
    out.put<Cycle>(busyCycles_);
    out.put<Cycle>(completed_);
}

void
AsyncBusInterface::restore(Deserializer &in)
{
    busy_ = in.getBool();
    remaining_ = in.get<std::uint32_t>();
    pending_.stream = in.get<StreamId>();
    pending_.isWrite = in.getBool();
    pending_.destReg = in.get<std::int32_t>();
    pending_.data = in.get<Word>();
    pending_.addr = in.get<Addr>();
    if (in.getBool()) {
        Completion c;
        c.stream = in.get<StreamId>();
        c.isWrite = in.getBool();
        c.destReg = in.get<std::int32_t>();
        c.data = in.get<Word>();
        c.addr = in.get<Addr>();
        immediate_ = c;
    } else {
        immediate_.reset();
    }
    busyCycles_ = in.get<Cycle>();
    completed_ = in.get<Cycle>();
}

void
AsyncBusInterface::reset()
{
    busy_ = false;
    remaining_ = 0;
    immediate_.reset();
    busyCycles_ = 0;
    completed_ = 0;
}

} // namespace disc
