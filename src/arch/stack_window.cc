#include "arch/stack_window.hh"

#include "common/logging.hh"

namespace disc
{

StackWindow::StackWindow(InternalMemory &mem, Addr base, Addr size)
    : mem_(mem), base_(base), limit_(base + size)
{
    if (size < kNumWindowRegs)
        fatal("stack region of %u words cannot hold a window", size);
    if (limit_ > mem.size())
        fatal("stack region [%u, %u) exceeds internal memory", base,
              limit_);
    reset();
}

Word
StackWindow::read(unsigned n) const
{
    if (n >= kNumWindowRegs)
        panic("window register r%u out of range", n);
    return mem_.read(static_cast<Addr>(awp_ - n));
}

void
StackWindow::write(unsigned n, Word value)
{
    if (n >= kNumWindowRegs)
        panic("window register r%u out of range", n);
    mem_.write(static_cast<Addr>(awp_ - n), value);
}

bool
StackWindow::move(int delta)
{
    int next = static_cast<int>(awp_) + delta;
    if (next < static_cast<int>(minAwp())) {
        awp_ = minAwp();
        return true;
    }
    if (next >= static_cast<int>(limit_)) {
        awp_ = static_cast<Addr>(limit_ - 1);
        return true;
    }
    awp_ = static_cast<Addr>(next);
    return false;
}

bool
StackWindow::setAwp(Addr value)
{
    if (value < minAwp()) {
        awp_ = minAwp();
        return true;
    }
    if (value >= limit_) {
        awp_ = static_cast<Addr>(limit_ - 1);
        return true;
    }
    awp_ = value;
    return false;
}

void
StackWindow::reset()
{
    awp_ = minAwp();
}

void
StackWindow::save(Serializer &out) const
{
    out.put<Addr>(awp_);
}

void
StackWindow::restore(Deserializer &in)
{
    Addr awp = in.get<Addr>();
    if (awp < minAwp() || awp >= limit_)
        fatal("checkpoint AWP %u outside the stack region", awp);
    awp_ = awp;
}

} // namespace disc
