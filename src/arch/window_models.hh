/**
 * @file
 * Register-traffic models for procedure-call register organisations
 * (paper section 2.0 vs 3.5).
 *
 * The paper argues that fixed register windows (RISC-I style) have
 * "disadvantageous worst case replacement behavior": when the call
 * depth oscillates across a window boundary, every call spills a full
 * window and every return fills one. The DISC stack window slides by
 * exactly the words a frame needs and touches memory only through the
 * registers themselves (which *live* in internal memory), so register
 * save traffic is zero until the region is exhausted.
 *
 * These models charge memory-traffic cycles to call/return/interrupt
 * traces so the two organisations can be compared quantitatively
 * (bench/ablation_fixed_windows).
 */

#ifndef DISC_ARCH_WINDOW_MODELS_HH
#define DISC_ARCH_WINDOW_MODELS_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace disc
{

/** Traffic accumulated by a window model. */
struct WindowTraffic
{
    std::uint64_t calls = 0;
    std::uint64_t returns = 0;
    std::uint64_t spillWords = 0; ///< words written to memory
    std::uint64_t fillWords = 0;  ///< words read back
    std::uint64_t overflowTraps = 0;

    /** Total traffic cycles at @p cycles_per_word. */
    Cycle
    trafficCycles(unsigned cycles_per_word) const
    {
        return (spillWords + fillWords) * cycles_per_word;
    }
};

/**
 * Classic fixed overlapping windows: W resident windows of K
 * registers. A call past the resident set spills the oldest window
 * (K words); a return below it fills one back.
 */
class FixedWindowModel
{
  public:
    /**
     * @param windows          resident windows (W).
     * @param regs_per_window  registers per window (K).
     */
    FixedWindowModel(unsigned windows, unsigned regs_per_window);

    /** Procedure call (frame size is fixed at K by construction). */
    void call();

    /** Procedure return. */
    void ret();

    /** Current call depth. */
    unsigned depth() const { return depth_; }

    /** Accumulated traffic. */
    const WindowTraffic &traffic() const { return traffic_; }

  private:
    unsigned windows_;
    unsigned regsPerWindow_;
    unsigned depth_ = 0;     ///< current call depth
    unsigned resident_ = 0;  ///< shallowest resident window's depth
    WindowTraffic traffic_;
};

/**
 * The DISC stack window over a fixed region: calls claim exactly the
 * requested words, returns release them, and no spill traffic exists.
 * Exceeding the region raises the overflow trap, charged as a
 * fixed-cost recovery (handler spilling the whole region).
 */
class StackWindowModel
{
  public:
    /**
     * @param region_words   stack region capacity.
     * @param trap_cost_words words of traffic charged per overflow
     *                        recovery (the handler must move the
     *                        region to backing store).
     */
    StackWindowModel(unsigned region_words, unsigned trap_cost_words);

    /** Procedure call claiming @p frame_words (RA + locals). */
    void call(unsigned frame_words);

    /** Procedure return releasing the top frame. */
    void ret();

    /** Current depth in words. */
    unsigned depthWords() const { return depthWords_; }

    /** Accumulated traffic. */
    const WindowTraffic &traffic() const { return traffic_; }

  private:
    unsigned regionWords_;
    unsigned trapCostWords_;
    unsigned depthWords_ = 0;
    std::uint64_t frames_ = 0;
    std::vector<unsigned> frameSizes_;
    WindowTraffic traffic_;
};

} // namespace disc

#endif // DISC_ARCH_WINDOW_MODELS_HH
