/**
 * @file
 * The hardware stream scheduler (paper sections 3.4 and 3.7).
 *
 * Throughput is partitioned with a 16-slot table: slot i names the
 * stream that owns the i-th 1/16 of the machine's issue bandwidth.
 * Every cycle the scheduler consumes one slot. If the slot's owner is
 * ready, it issues; otherwise the slot is *dynamically reallocated*:
 * the table is scanned circularly for the next ready stream, so idle
 * or waiting streams donate their bandwidth to the others (Figure
 * 3.3). If no stream is ready the cycle is a bubble.
 *
 * A strict-static mode (no reallocation) is provided for the ablation
 * study: a slot whose owner is not ready is simply wasted.
 *
 * Implementation note: pick() used to scan up to 15 slots per cycle.
 * Its decision depends only on (mode, cursor, ready mask), and with 4
 * streams and 16 slots that is a 2 x 16 x 16 space — small enough to
 * precompute. The memo is rebuilt whenever the slot table changes
 * (setSlot/setEven/setShares/restore/reset); it covers both modes so
 * setMode needs no rebuild, and skipSlots only moves the cursor. The
 * per-cycle pick() is then a single table load whose results — and
 * nextOwner() audit semantics — are bit-identical to the scan.
 */

#ifndef DISC_ARCH_SCHEDULER_HH
#define DISC_ARCH_SCHEDULER_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/serialize.hh"
#include "common/types.hh"

namespace disc
{

/** Slot-table stream scheduler with dynamic reallocation. */
class Scheduler
{
  public:
    /** Scheduling policy. */
    enum class Mode
    {
        Dynamic, ///< reallocate unready slots (the DISC concept)
        Static,  ///< strict partition: unready slot -> bubble (ablation)
    };

    Scheduler();

    /** Assign slot @p slot to stream @p s (the SCHED instruction). */
    void setSlot(unsigned slot, StreamId s);

    /** Owner of a slot. */
    StreamId slot(unsigned i) const;

    /** Set an even round-robin partition over @p n streams. */
    void setEven(unsigned n = kNumStreams);

    /**
     * Set a proportional partition: shares[s] sixteenths for stream s.
     * The shares must sum to kScheduleSlots. Slots are distributed in
     * an interleaved (bit-reversal) order so each stream's slots are
     * spread across the frame rather than clustered.
     */
    void setShares(const std::array<unsigned, kNumStreams> &shares);

    /** Select the scheduling policy. */
    void setMode(Mode m) { mode_ = m; }

    /** Current policy. */
    Mode mode() const { return mode_; }

    /**
     * Pick the stream to issue this cycle and advance the slot cursor.
     * A memoized (mode, cursor, ready mask) lookup; see the file
     * comment. Scheduler::referencePick() is the original scan.
     * @param ready_mask bit s set when stream s can issue.
     * @return the chosen stream, or kNoStream for a bubble.
     */
    StreamId pick(unsigned ready_mask)
    {
        const PickEntry &e =
            memo_[memoIndex(mode_, cursor_, ready_mask & kMaskAll)];
        cursor_ = e.nextCursor;
        return e.stream;
    }

    /**
     * The unmemoized pick: what a pick() at @p cursor with
     * @p ready_mask under @p mode would choose, computed by the
     * original circular scan. Does not advance the cursor. Kept as
     * the reference the memo is built from — and tested against.
     */
    StreamId referencePick(unsigned cursor, unsigned ready_mask,
                           Mode mode) const;

    /** Slot cursor position (for tracing). */
    unsigned cursor() const { return cursor_; }

    /**
     * Consume @p n slots without issuing (bulk bubbles): exactly what
     * n pick() calls with an empty ready mask would do to the cursor.
     * Used by the fast-forward path when whole spans are dead.
     */
    void skipSlots(unsigned n) { cursor_ = (cursor_ + n) % kScheduleSlots; }

    /**
     * Static owner of the slot the next pick() will consume — the
     * stream entitled to the upcoming issue cycle before any dynamic
     * reallocation (verification oracles audit pick() against this).
     */
    StreamId nextOwner() const { return slots_[cursor_]; }

    /** Restore the reset partition (even) and rewind the cursor. */
    void reset();

    /** Printable slot table, e.g. "0123012301230123". */
    std::string describe() const;

    /** Serialize the table, cursor and mode. */
    void save(Serializer &out) const;

    /** Restore state saved by save(). */
    void restore(Deserializer &in);

  private:
    /** One memoized decision: chosen stream and the cursor after. */
    struct PickEntry
    {
        StreamId stream;
        std::uint8_t nextCursor;
    };

    static constexpr unsigned kMaskAll = (1u << kNumStreams) - 1;
    static constexpr unsigned kNumMasks = 1u << kNumStreams;

    static constexpr unsigned
    memoIndex(Mode m, unsigned cursor, unsigned mask)
    {
        unsigned mode_base = m == Mode::Static ? kScheduleSlots : 0;
        return (mode_base + cursor) * kNumMasks + mask;
    }

    /** Recompute every memo entry from the slot table. */
    void rebuildMemo();

    std::array<StreamId, kScheduleSlots> slots_;
    unsigned cursor_ = 0;
    Mode mode_ = Mode::Dynamic;
    std::array<PickEntry, 2 * kScheduleSlots * kNumMasks> memo_;
};

} // namespace disc

#endif // DISC_ARCH_SCHEDULER_HH
