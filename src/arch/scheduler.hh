/**
 * @file
 * The hardware stream scheduler (paper sections 3.4 and 3.7).
 *
 * Throughput is partitioned with a 16-slot table: slot i names the
 * stream that owns the i-th 1/16 of the machine's issue bandwidth.
 * Every cycle the scheduler consumes one slot. If the slot's owner is
 * ready, it issues; otherwise the slot is *dynamically reallocated*:
 * the table is scanned circularly for the next ready stream, so idle
 * or waiting streams donate their bandwidth to the others (Figure
 * 3.3). If no stream is ready the cycle is a bubble.
 *
 * A strict-static mode (no reallocation) is provided for the ablation
 * study: a slot whose owner is not ready is simply wasted.
 */

#ifndef DISC_ARCH_SCHEDULER_HH
#define DISC_ARCH_SCHEDULER_HH

#include <array>
#include <string>

#include "common/serialize.hh"
#include "common/types.hh"

namespace disc
{

/** Slot-table stream scheduler with dynamic reallocation. */
class Scheduler
{
  public:
    /** Scheduling policy. */
    enum class Mode
    {
        Dynamic, ///< reallocate unready slots (the DISC concept)
        Static,  ///< strict partition: unready slot -> bubble (ablation)
    };

    Scheduler();

    /** Assign slot @p slot to stream @p s (the SCHED instruction). */
    void setSlot(unsigned slot, StreamId s);

    /** Owner of a slot. */
    StreamId slot(unsigned i) const;

    /** Set an even round-robin partition over @p n streams. */
    void setEven(unsigned n = kNumStreams);

    /**
     * Set a proportional partition: shares[s] sixteenths for stream s.
     * The shares must sum to kScheduleSlots. Slots are distributed in
     * an interleaved (bit-reversal) order so each stream's slots are
     * spread across the frame rather than clustered.
     */
    void setShares(const std::array<unsigned, kNumStreams> &shares);

    /** Select the scheduling policy. */
    void setMode(Mode m) { mode_ = m; }

    /** Current policy. */
    Mode mode() const { return mode_; }

    /**
     * Pick the stream to issue this cycle and advance the slot cursor.
     * @param ready_mask bit s set when stream s can issue.
     * @return the chosen stream, or kNoStream for a bubble.
     */
    StreamId pick(unsigned ready_mask);

    /** Slot cursor position (for tracing). */
    unsigned cursor() const { return cursor_; }

    /**
     * Consume @p n slots without issuing (bulk bubbles): exactly what
     * n pick() calls with an empty ready mask would do to the cursor.
     * Used by the fast-forward path when whole spans are dead.
     */
    void skipSlots(unsigned n) { cursor_ = (cursor_ + n) % kScheduleSlots; }

    /**
     * Static owner of the slot the next pick() will consume — the
     * stream entitled to the upcoming issue cycle before any dynamic
     * reallocation (verification oracles audit pick() against this).
     */
    StreamId nextOwner() const { return slots_[cursor_]; }

    /** Restore the reset partition (even) and rewind the cursor. */
    void reset();

    /** Printable slot table, e.g. "0123012301230123". */
    std::string describe() const;

    /** Serialize the table, cursor and mode. */
    void save(Serializer &out) const;

    /** Restore state saved by save(). */
    void restore(Deserializer &in);

  private:
    std::array<StreamId, kScheduleSlots> slots_;
    unsigned cursor_ = 0;
    Mode mode_ = Mode::Dynamic;
};

} // namespace disc

#endif // DISC_ARCH_SCHEDULER_HH
