/**
 * @file
 * On-chip memories of DISC1: the 2 KB shared internal data memory and
 * the 24-bit-wide program memory (Harvard organisation).
 *
 * Internal memory is word-addressed (1024 x 16 bits), shared between
 * all instruction streams, and accessible in a single cycle via
 * register indirect, register+offset, or 9-bit direct addressing. It
 * supports an atomic read-modify-write (test-and-set) used for
 * semaphores (paper section 3.6.2).
 */

#ifndef DISC_ARCH_MEMORY_HH
#define DISC_ARCH_MEMORY_HH

#include <vector>

#include "common/serialize.hh"
#include "common/types.hh"
#include "isa/program.hh"

namespace disc
{

/** The shared on-chip data memory (single-cycle, word addressed). */
class InternalMemory
{
  public:
    InternalMemory();

    /** Read one word; address is taken modulo the memory size. */
    Word read(Addr addr) const;

    /** Write one word. */
    void write(Addr addr, Word value);

    /**
     * Atomic test-and-set for semaphores: returns the old value and
     * writes all-ones in the same cycle.
     */
    Word testAndSet(Addr addr);

    /** Number of words. */
    std::size_t size() const { return mem_.size(); }

    /** Clear to zero. */
    void reset();

    /** Apply a program's .dmem preload records. */
    void load(const Program &prog);

    /** Serialize the full contents. */
    void save(Serializer &out) const;

    /** Restore contents saved by save(). */
    void restore(Deserializer &in);

  private:
    std::vector<Word> mem_;

    Addr index(Addr addr) const;
};

/** Program memory: one 24-bit instruction word per address. */
class ProgramMemory
{
  public:
    /** Load a program image (replaces the current contents). */
    void load(const Program &prog);

    /** Fetch the word at an address; out-of-image fetches return NOP. */
    InstWord fetch(PAddr addr) const;

    /** Number of valid words. */
    std::size_t size() const { return code_.size(); }

  private:
    std::vector<InstWord> code_;
};

} // namespace disc

#endif // DISC_ARCH_MEMORY_HH
