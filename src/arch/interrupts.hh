/**
 * @file
 * Per-stream interrupt architecture (paper section 3.6.3).
 *
 * Every instruction stream has an 8-bit interrupt request register
 * (IR) and mask register (MR). Bit 7 is the highest priority, bit 0
 * the background / normal-run level. Bits 7..1 are vectored; bit 0
 * generates no vector. Request bits are set by external events,
 * software interrupts from any stream (SWI), or automatically (stack
 * overflow, illegal instruction); they can only be *cleared* by the
 * owning stream (CLRI).
 *
 * A stream is schedulable ("active") while (IR & MR) != 0. When the
 * highest pending unmasked level exceeds the stream's current running
 * level, the next instruction of that stream starts at the vector
 * address; the hardware records the new running level on a small
 * in-service stack that RETI pops.
 */

#ifndef DISC_ARCH_INTERRUPTS_HH
#define DISC_ARCH_INTERRUPTS_HH

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/serialize.hh"
#include "common/types.hh"

namespace disc
{

/** Interrupt bit raised on an illegal instruction. */
constexpr unsigned kIllegalInstBit = 7;

/** Interrupt bit raised when an external access decodes to no device. */
constexpr unsigned kBusFaultBit = 5;

/** Program-memory address of stream @p s's vector for level @p lvl. */
constexpr PAddr
vectorAddress(StreamId s, unsigned lvl)
{
    return static_cast<PAddr>(s * kNumIntLevels + lvl);
}

/** First program address after the vector table. */
constexpr PAddr kVectorTableEnd = kNumStreams * kNumIntLevels;

/** The per-stream interrupt state for the whole machine. */
class InterruptUnit
{
  public:
    InterruptUnit();

    /** Set request bit @p bit of stream @p s (any source may do this). */
    void raise(StreamId s, unsigned bit);

    /** Clear request bit @p bit of stream @p s (owner only: CLRI). */
    void clear(StreamId s, unsigned bit);

    /** Current request register of a stream. */
    Word ir(StreamId s) const;

    /** Current mask register of a stream. */
    Word mr(StreamId s) const;

    /** Write the mask register (low 8 bits used). */
    void setMr(StreamId s, Word value);

    /**
     * True while the stream has any unmasked request pending.
     * Queried for every stream every cycle, so it is inline and
     * unchecked: @p s must be a valid stream id.
     */
    bool isActive(StreamId s) const
    {
        return (streams_[s].ir & streams_[s].mr) != 0;
    }

    /**
     * Level of the vectored interrupt the stream should take now, if
     * any: the highest unmasked pending level in 7..1 that is strictly
     * above the running level. Also a per-stream per-cycle query; the
     * common nothing-vectored case (no unmasked request above the
     * background bit) is decided inline without the priority walk.
     */
    std::optional<unsigned> pendingVector(StreamId s) const
    {
        unsigned pending = streams_[s].ir & streams_[s].mr;
        if ((pending & ~1u) == 0)
            return std::nullopt; // only the background level is pending
        return pendingVectorSlow(s, pending);
    }

    /** Record vector entry: push @p level onto the in-service stack. */
    void enterService(StreamId s, unsigned level);

    /**
     * RETI: pop the in-service stack.
     * @return false if the stream was not servicing an interrupt.
     */
    bool exitService(StreamId s);

    /** Current running level (0 = background). */
    unsigned runningLevel(StreamId s) const;

    /** Nesting depth of in-service interrupts. */
    unsigned serviceDepth(StreamId s) const;

    /** Reset all streams: IR = 0, MR = 0xff, running level 0. */
    void reset();

    /**
     * Fault injection for verification: vector the LOWEST eligible
     * pending level instead of the highest, inverting the paper's
     * bit-7-highest priority rule. Exists so the invariant checker's
     * priority oracle can be demonstrated to catch a real bug class
     * (disc_fuzz --defect low-priority-vector). Configuration, not
     * architectural state: reset() and save()/restore() ignore it.
     */
    void setDefectLowPriorityVector(bool on) { defectLowPriority_ = on; }

    /** True while the priority-inversion defect is injected. */
    bool defectLowPriorityVector() const { return defectLowPriority_; }

    /** Serialize all per-stream interrupt state. */
    void save(Serializer &out) const;

    /** Restore state saved by save(). */
    void restore(Deserializer &in);

  private:
    struct StreamState
    {
        std::uint8_t ir = 0;
        std::uint8_t mr = 0xff;
        std::vector<std::uint8_t> service; ///< in-service level stack
    };

    std::array<StreamState, kNumStreams> streams_;
    bool defectLowPriority_ = false;

    std::optional<unsigned> pendingVectorSlow(StreamId s,
                                              unsigned pending) const;
    const StreamState &state(StreamId s) const;
    StreamState &state(StreamId s);
};

} // namespace disc

#endif // DISC_ARCH_INTERRUPTS_HH
