/**
 * @file
 * The stack-window register set (paper section 3.5).
 *
 * Each instruction stream owns a region of internal memory used as a
 * register stack. The Active Window Pointer (AWP) addresses register
 * R0; Rn lives at AWP-n for n in 0..7. Incrementing AWP slides the
 * window up (the old R7 leaves the window, a fresh R0 appears);
 * decrementing slides it down (the old R0 is lost, as in Figure 3.5).
 *
 * Unlike RISC-I's fixed windows, the number of registers allocated per
 * procedure call is variable: CALL implicitly increments AWP and
 * deposits the return address in the new R0; the callee claims locals
 * with auto-increment instructions; RET n moves the window back down
 * by n (its local count) to expose the return address, jumps, and pops
 * once more.
 *
 * Moving AWP outside the stream's stack region is the auto-generated
 * stack-overflow condition (paper section 3.6.3); the machine maps it
 * to interrupt bit kStackOverflowBit of the offending stream.
 */

#ifndef DISC_ARCH_STACK_WINDOW_HH
#define DISC_ARCH_STACK_WINDOW_HH

#include "arch/memory.hh"
#include "common/serialize.hh"
#include "common/types.hh"

namespace disc
{

/** Interrupt bit raised on stack window overflow/underflow. */
constexpr unsigned kStackOverflowBit = 6;

/** Default per-stream stack region geometry within internal memory. */
constexpr Addr kStackRegionBase = 512;  ///< first word of stream 0's stack
constexpr Addr kStackRegionWords = 128; ///< words per stream

/** Default stack region for a stream: [base, base+size). */
constexpr Addr
stackBaseFor(StreamId s)
{
    return static_cast<Addr>(kStackRegionBase + s * kStackRegionWords);
}

/**
 * One stream's sliding register window over its stack region in
 * internal memory.
 */
class StackWindow
{
  public:
    /**
     * @param mem   backing internal memory.
     * @param base  first word of this stream's stack region.
     * @param size  region size in words (must hold at least one window).
     */
    StackWindow(InternalMemory &mem, Addr base, Addr size);

    /** Read window register Rn (n in 0..7). */
    Word read(unsigned n) const;

    /** Write window register Rn. */
    void write(unsigned n, Word value);

    /**
     * Move the window: delta of +1 is a WINC / call push, -1 a WDEC,
     * -n the RET unwind.
     * @return true if the move violated the region bounds (the AWP is
     *         clamped to the nearest legal value and the caller should
     *         raise the stack-overflow interrupt).
     */
    bool move(int delta);

    /** AWP += 1. @return true on bounds violation. */
    bool inc() { return move(1); }

    /** AWP -= 1. @return true on bounds violation. */
    bool dec() { return move(-1); }

    /** Current AWP (absolute internal-memory word address). */
    Addr awp() const { return awp_; }

    /** Words of headroom before the window overflows the region. */
    unsigned headroom() const { return limit_ - 1 - awp_; }

    /** Current stack depth in words (entries above the empty state). */
    unsigned depth() const { return awp_ - minAwp(); }

    /**
     * Write the AWP directly (MOV to the AWP special register).
     * @return true if the value was illegal (clamped).
     */
    bool setAwp(Addr value);

    /** Lowest legal AWP: a full window must fit above the region base. */
    Addr minAwp() const
    {
        return static_cast<Addr>(base_ + kNumWindowRegs - 1);
    }

    /** Region base (the paper's Bottom Of Stack register). */
    Addr bos() const { return base_; }

    /** One past the last word of the region (the AWP must stay below). */
    Addr limit() const { return limit_; }

    /** Reset AWP to the empty-stack position. */
    void reset();

    /** Serialize the window position (contents live in memory). */
    void save(Serializer &out) const;

    /** Restore a position saved by save(). */
    void restore(Deserializer &in);

  private:
    InternalMemory &mem_;
    Addr base_;
    Addr limit_;  ///< one past the last word of the region
    Addr awp_;
};

} // namespace disc

#endif // DISC_ARCH_STACK_WINDOW_HH
