#include "arch/devices.hh"

#include "common/logging.hh"

namespace disc
{

ExternalMemoryDevice::ExternalMemoryDevice(std::size_t words,
                                           unsigned latency)
    : mem_(words, 0), latency_(latency)
{
    if (words == 0)
        fatal("external memory needs at least one word");
}

unsigned
ExternalMemoryDevice::latency(Addr offset, bool is_write) const
{
    (void)offset;
    (void)is_write;
    return latency_;
}

Word
ExternalMemoryDevice::read(Addr offset)
{
    return mem_[offset % mem_.size()];
}

void
ExternalMemoryDevice::write(Addr offset, Word value)
{
    mem_[offset % mem_.size()] = value;
}

Word
ExternalMemoryDevice::peek(Addr offset) const
{
    return mem_[offset % mem_.size()];
}

void
ExternalMemoryDevice::poke(Addr offset, Word value)
{
    mem_[offset % mem_.size()] = value;
}

SensorDevice::SensorDevice(unsigned period, unsigned read_latency)
    : period_(period), readLatency_(read_latency), countdown_(period)
{
    if (period == 0)
        fatal("sensor period must be positive");
    gen_ = [](std::uint64_t n) { return static_cast<Word>(n * 17 + 3); };
}

void
SensorDevice::setInterrupt(StreamId stream, unsigned bit)
{
    intEnabled_ = true;
    intReq_ = {stream, bit};
}

unsigned
SensorDevice::latency(Addr offset, bool is_write) const
{
    (void)offset;
    (void)is_write;
    return readLatency_;
}

Word
SensorDevice::read(Addr offset)
{
    if (offset == 0) {
        ++reads_;
        return latest_;
    }
    return static_cast<Word>(samples_ & 0xffff);
}

void
SensorDevice::write(Addr offset, Word value)
{
    (void)offset;
    (void)value;
    // Sensors are read-only; a real device would ignore the cycle.
}

Cycle
SensorDevice::nextEventIn() const
{
    return countdown_;
}

std::optional<IntRequest>
SensorDevice::onEvent(Cycle cycles)
{
    countdown_ -= static_cast<unsigned>(cycles);
    if (countdown_ != 0)
        return std::nullopt;
    countdown_ = period_;
    latest_ = gen_(samples_);
    ++samples_;
    if (intEnabled_)
        return intReq_;
    return std::nullopt;
}

ActuatorDevice::ActuatorDevice(unsigned write_latency)
    : writeLatency_(write_latency)
{}

unsigned
ActuatorDevice::latency(Addr offset, bool is_write) const
{
    (void)offset;
    (void)is_write;
    return writeLatency_;
}

Word
ActuatorDevice::read(Addr offset)
{
    (void)offset;
    return lastValue();
}

void
ActuatorDevice::write(Addr offset, Word value)
{
    outputs_.push_back({now_, offset, value});
}

std::optional<IntRequest>
ActuatorDevice::onEvent(Cycle cycles)
{
    now_ += cycles;
    return std::nullopt;
}

Word
ActuatorDevice::lastValue() const
{
    for (auto it = outputs_.rbegin(); it != outputs_.rend(); ++it) {
        if (it->offset == 0)
            return it->value;
    }
    return 0;
}

TimerDevice::TimerDevice(unsigned period, StreamId stream, unsigned bit)
    : period_(period), countdown_(period), intReq_{stream, bit}
{
    if (period == 0)
        fatal("timer period must be positive");
}

unsigned
TimerDevice::latency(Addr offset, bool is_write) const
{
    (void)offset;
    (void)is_write;
    return 0;
}

Word
TimerDevice::read(Addr offset)
{
    (void)offset;
    return static_cast<Word>(countdown_ & 0xffff);
}

void
TimerDevice::write(Addr offset, Word value)
{
    (void)offset;
    if (value == 0)
        return;
    period_ = value;
    countdown_ = value;
}

Cycle
TimerDevice::nextEventIn() const
{
    return countdown_;
}

std::optional<IntRequest>
TimerDevice::onEvent(Cycle cycles)
{
    countdown_ -= static_cast<unsigned>(cycles);
    if (countdown_ != 0)
        return std::nullopt;
    countdown_ = period_;
    ++fired_;
    return intReq_;
}

UartDevice::UartDevice(unsigned rx_period, unsigned latency)
    : period_(rx_period), latency_(latency), countdown_(rx_period)
{
    if (rx_period == 0)
        fatal("uart rx period must be positive");
}

void
UartDevice::scriptRx(std::vector<Word> words)
{
    bool was_idle = script_.empty();
    for (Word w : words)
        script_.push_back(w);
    // While idle the RX cadence is frozen (countdown_ == period_), so
    // the skipped time was event-free; tell the timing kernel to
    // restart the schedule from here.
    if (was_idle && !script_.empty())
        notifyScheduleChanged();
}

void
UartDevice::setRxInterrupt(StreamId stream, unsigned bit)
{
    intEnabled_ = true;
    intReq_ = {stream, bit};
}

unsigned
UartDevice::latency(Addr offset, bool is_write) const
{
    (void)offset;
    (void)is_write;
    return latency_;
}

Word
UartDevice::read(Addr offset)
{
    switch (offset) {
      case 0:
        rxReady_ = false;
        return rxData_;
      case 2:
        return rxReady_ ? 1 : 0;
      default:
        return 0;
    }
}

void
UartDevice::write(Addr offset, Word value)
{
    if (offset == 1)
        tx_.push_back(value);
}

Cycle
UartDevice::nextEventIn() const
{
    return script_.empty() ? kNoDeviceEvent : countdown_;
}

std::optional<IntRequest>
UartDevice::onEvent(Cycle cycles)
{
    if (script_.empty())
        return std::nullopt;
    countdown_ -= static_cast<unsigned>(cycles);
    if (countdown_ != 0)
        return std::nullopt;
    countdown_ = period_;
    if (rxReady_)
        ++overruns_; // the previous word was never read
    rxData_ = script_.front();
    script_.pop_front();
    rxReady_ = true;
    if (intEnabled_)
        return intReq_;
    return std::nullopt;
}

DmaDevice::DmaDevice(ExternalMemoryDevice &target,
                     unsigned cycles_per_word)
    : target_(target), cyclesPerWord_(cycles_per_word)
{
    if (cycles_per_word == 0)
        fatal("dma needs at least one cycle per word");
}

void
DmaDevice::setCompletionInterrupt(StreamId stream, unsigned bit)
{
    intEnabled_ = true;
    intReq_ = {stream, bit};
}

unsigned
DmaDevice::latency(Addr offset, bool is_write) const
{
    (void)offset;
    (void)is_write;
    return 0; // register file access, zero wait states
}

Word
DmaDevice::read(Addr offset)
{
    switch (offset) {
      case 0: return src_;
      case 1: return dst_;
      case 2: return remaining_;
      case 3: return remaining_ > 0 ? 1 : 0;
      default: return 0;
    }
}

void
DmaDevice::write(Addr offset, Word value)
{
    switch (offset) {
      case 0:
        src_ = value;
        break;
      case 1:
        dst_ = value;
        break;
      case 2:
        if (remaining_ == 0 && value > 0) {
            remaining_ = value;
            countdown_ = cyclesPerWord_;
        }
        break;
      default:
        break;
    }
}

Cycle
DmaDevice::nextEventIn() const
{
    return remaining_ == 0 ? kNoDeviceEvent : countdown_;
}

std::optional<IntRequest>
DmaDevice::onEvent(Cycle cycles)
{
    if (remaining_ == 0)
        return std::nullopt;
    countdown_ -= static_cast<unsigned>(cycles);
    if (countdown_ != 0)
        return std::nullopt;
    countdown_ = cyclesPerWord_;
    target_.poke(dst_, target_.peek(src_));
    ++src_;
    ++dst_;
    if (--remaining_ == 0) {
        ++done_;
        if (intEnabled_)
            return intReq_;
    }
    return std::nullopt;
}

WatchdogDevice::WatchdogDevice(unsigned timeout, unsigned grace,
                               unsigned latency)
    : timeout_(timeout), grace_(grace), latency_(latency),
      countdown_(timeout)
{
    if (timeout == 0)
        fatal("watchdog timeout must be positive");
    if (grace == 0)
        fatal("watchdog grace must be positive");
}

void
WatchdogDevice::setBiteInterrupt(StreamId stream, unsigned bit)
{
    biteEnabled_ = true;
    biteReq_ = {stream, bit};
}

void
WatchdogDevice::setResetInterrupt(StreamId stream, unsigned bit)
{
    resetEnabled_ = true;
    resetReq_ = {stream, bit};
}

unsigned
WatchdogDevice::latency(Addr offset, bool is_write) const
{
    (void)offset;
    (void)is_write;
    return latency_;
}

Word
WatchdogDevice::read(Addr offset)
{
    switch (offset) {
      case 0: return static_cast<Word>(countdown_ & 0xffff);
      case 1: return inGrace_ ? 1 : 0;
      case 2: return static_cast<Word>(bites_ & 0xffff);
      case 3: return static_cast<Word>(resets_ & 0xffff);
      default: return 0;
    }
}

void
WatchdogDevice::write(Addr offset, Word value)
{
    (void)value;
    if (offset != 0)
        return;
    // A kick always returns the dog to the watching phase, including
    // from the grace window (the bite handler's recovery path).
    inGrace_ = false;
    countdown_ = timeout_;
}

Cycle
WatchdogDevice::nextEventIn() const
{
    return countdown_; // a watchdog is never quiescent
}

std::optional<IntRequest>
WatchdogDevice::onEvent(Cycle cycles)
{
    countdown_ -= static_cast<unsigned>(cycles);
    if (countdown_ != 0)
        return std::nullopt;
    if (!inGrace_) {
        inGrace_ = true;
        countdown_ = grace_;
        ++bites_;
        if (biteEnabled_)
            return biteReq_;
        return std::nullopt;
    }
    inGrace_ = false;
    countdown_ = timeout_;
    ++resets_;
    if (resetEnabled_)
        return resetReq_;
    return std::nullopt;
}

GpioDevice::GpioDevice(unsigned period, std::vector<Word> pattern,
                       Edge edge, unsigned latency)
    : period_(period), pattern_(std::move(pattern)), edge_(edge),
      latency_(latency), countdown_(period)
{
    if (period == 0)
        fatal("gpio period must be positive");
    if (pattern_.empty())
        fatal("gpio pattern must be non-empty");
}

void
GpioDevice::setEdgeInterrupt(StreamId stream, unsigned bit)
{
    intEnabled_ = true;
    intReq_ = {stream, bit};
}

unsigned
GpioDevice::latency(Addr offset, bool is_write) const
{
    (void)offset;
    (void)is_write;
    return latency_;
}

Word
GpioDevice::read(Addr offset)
{
    switch (offset) {
      case 0:
        return input_;
      case 1:
        return latch_;
      case 2: {
        Word p = pending_;
        pending_ = 0;
        return p;
      }
      case 3:
        return static_cast<Word>(steps_ & 0xffff);
      default:
        return 0;
    }
}

void
GpioDevice::write(Addr offset, Word value)
{
    if (offset == 1)
        latch_ = value;
}

Cycle
GpioDevice::nextEventIn() const
{
    return countdown_;
}

std::optional<IntRequest>
GpioDevice::onEvent(Cycle cycles)
{
    countdown_ -= static_cast<unsigned>(cycles);
    if (countdown_ != 0)
        return std::nullopt;
    countdown_ = period_;
    Word next = pattern_[idx_];
    idx_ = (idx_ + 1) % static_cast<std::uint32_t>(pattern_.size());
    Word rise = static_cast<Word>(next & ~input_);
    Word fall = static_cast<Word>(~next & input_);
    Word sensed = edge_ == Edge::Rise   ? rise
                  : edge_ == Edge::Fall ? fall
                                        : static_cast<Word>(rise | fall);
    input_ = next;
    ++steps_;
    if (sensed == 0)
        return std::nullopt;
    pending_ |= sensed;
    if (intEnabled_)
        return intReq_;
    return std::nullopt;
}

MailboxDevice::MailboxDevice(unsigned depth, unsigned delay,
                             unsigned latency)
    : depth_(depth), delay_(delay), latency_(latency)
{
    if (depth == 0)
        fatal("mailbox depth must be positive");
    if (delay == 0)
        fatal("mailbox delivery delay must be positive");
}

void
MailboxDevice::setDeliveryInterrupt(StreamId stream, unsigned bit)
{
    intEnabled_ = true;
    intReq_ = {stream, bit};
}

unsigned
MailboxDevice::latency(Addr offset, bool is_write) const
{
    (void)offset;
    (void)is_write;
    return latency_;
}

Word
MailboxDevice::read(Addr offset)
{
    switch (offset) {
      case 0: {
        if (fifo_.empty())
            return 0;
        Word w = fifo_.front();
        fifo_.pop_front();
        return w;
      }
      case 2:
        return static_cast<Word>(fifo_.size() & 0xffff);
      case 3:
        return static_cast<Word>((fifo_.empty() ? 0 : 1) |
                                 (fifo_.size() >= depth_ ? 2 : 0));
      case 4:
        return static_cast<Word>(overflows_ & 0xffff);
      default:
        return 0;
    }
}

void
MailboxDevice::write(Addr offset, Word value)
{
    if (offset != 1)
        return;
    if (fifo_.size() >= depth_) {
        ++overflows_;
        return;
    }
    fifo_.push_back(value);
    // First undelivered post arms the delivery countdown; the timing
    // kernel re-queries nextEventIn() after every bus access, so no
    // out-of-band notify is needed on this path.
    if (undelivered_++ == 0)
        countdown_ = delay_;
}

Cycle
MailboxDevice::nextEventIn() const
{
    return undelivered_ == 0 ? kNoDeviceEvent : countdown_;
}

std::optional<IntRequest>
MailboxDevice::onEvent(Cycle cycles)
{
    if (undelivered_ == 0)
        return std::nullopt;
    countdown_ -= static_cast<unsigned>(cycles);
    if (countdown_ != 0)
        return std::nullopt;
    --undelivered_;
    if (undelivered_ > 0)
        countdown_ = delay_;
    if (intEnabled_)
        return intReq_;
    return std::nullopt;
}

void
ExternalMemoryDevice::save(Serializer &out) const
{
    out.putVector(mem_);
}

void
ExternalMemoryDevice::restore(Deserializer &in)
{
    auto words = in.getVector<Word>();
    if (words.size() != mem_.size())
        fatal("checkpoint external-memory size mismatch");
    mem_ = std::move(words);
}

void
SensorDevice::save(Serializer &out) const
{
    out.put<std::uint32_t>(countdown_);
    out.put<std::uint64_t>(samples_);
    out.put<std::uint64_t>(reads_);
    out.put(latest_);
}

void
SensorDevice::restore(Deserializer &in)
{
    countdown_ = in.get<std::uint32_t>();
    samples_ = in.get<std::uint64_t>();
    reads_ = in.get<std::uint64_t>();
    latest_ = in.get<Word>();
}

void
ActuatorDevice::save(Serializer &out) const
{
    out.put<Cycle>(now_);
    out.put<std::uint32_t>(static_cast<std::uint32_t>(outputs_.size()));
    for (const Output &o : outputs_) {
        out.put<Cycle>(o.cycle);
        out.put(o.offset);
        out.put(o.value);
    }
}

void
ActuatorDevice::restore(Deserializer &in)
{
    now_ = in.get<Cycle>();
    auto n = in.get<std::uint32_t>();
    outputs_.clear();
    outputs_.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        Output o;
        o.cycle = in.get<Cycle>();
        o.offset = in.get<Addr>();
        o.value = in.get<Word>();
        outputs_.push_back(o);
    }
}

void
TimerDevice::save(Serializer &out) const
{
    out.put<std::uint32_t>(period_);
    out.put<std::uint32_t>(countdown_);
    out.put<std::uint64_t>(fired_);
}

void
TimerDevice::restore(Deserializer &in)
{
    period_ = in.get<std::uint32_t>();
    countdown_ = in.get<std::uint32_t>();
    fired_ = in.get<std::uint64_t>();
}

void
UartDevice::save(Serializer &out) const
{
    out.put<std::uint32_t>(countdown_);
    out.put<std::uint32_t>(static_cast<std::uint32_t>(script_.size()));
    for (Word w : script_)
        out.put(w);
    out.putVector(tx_);
    out.put(rxData_);
    out.putBool(rxReady_);
    out.put<std::uint64_t>(overruns_);
}

void
UartDevice::restore(Deserializer &in)
{
    countdown_ = in.get<std::uint32_t>();
    auto n = in.get<std::uint32_t>();
    script_.clear();
    for (std::uint32_t i = 0; i < n; ++i)
        script_.push_back(in.get<Word>());
    tx_ = in.getVector<Word>();
    rxData_ = in.get<Word>();
    rxReady_ = in.getBool();
    overruns_ = in.get<std::uint64_t>();
}

void
DmaDevice::save(Serializer &out) const
{
    out.put<std::uint32_t>(countdown_);
    out.put(src_);
    out.put(dst_);
    out.put(remaining_);
    out.put<std::uint64_t>(done_);
}

void
DmaDevice::restore(Deserializer &in)
{
    countdown_ = in.get<std::uint32_t>();
    src_ = in.get<Word>();
    dst_ = in.get<Word>();
    remaining_ = in.get<Word>();
    done_ = in.get<std::uint64_t>();
}

void
WatchdogDevice::save(Serializer &out) const
{
    out.put<std::uint32_t>(countdown_);
    out.putBool(inGrace_);
    out.put<std::uint64_t>(bites_);
    out.put<std::uint64_t>(resets_);
}

void
WatchdogDevice::restore(Deserializer &in)
{
    countdown_ = in.get<std::uint32_t>();
    inGrace_ = in.getBool();
    bites_ = in.get<std::uint64_t>();
    resets_ = in.get<std::uint64_t>();
}

void
GpioDevice::save(Serializer &out) const
{
    out.put<std::uint32_t>(countdown_);
    out.put<std::uint32_t>(idx_);
    out.put(input_);
    out.put(pending_);
    out.put(latch_);
    out.put<std::uint64_t>(steps_);
}

void
GpioDevice::restore(Deserializer &in)
{
    countdown_ = in.get<std::uint32_t>();
    idx_ = in.get<std::uint32_t>();
    input_ = in.get<Word>();
    pending_ = in.get<Word>();
    latch_ = in.get<Word>();
    steps_ = in.get<std::uint64_t>();
}

void
MailboxDevice::save(Serializer &out) const
{
    out.put<std::uint32_t>(countdown_);
    out.put<std::uint32_t>(static_cast<std::uint32_t>(fifo_.size()));
    for (Word w : fifo_)
        out.put(w);
    out.put<std::uint32_t>(undelivered_);
    out.put<std::uint64_t>(overflows_);
}

void
MailboxDevice::restore(Deserializer &in)
{
    countdown_ = in.get<std::uint32_t>();
    auto n = in.get<std::uint32_t>();
    fifo_.clear();
    for (std::uint32_t i = 0; i < n; ++i)
        fifo_.push_back(in.get<Word>());
    undelivered_ = in.get<std::uint32_t>();
    overflows_ = in.get<std::uint64_t>();
}

} // namespace disc
