#include "arch/scheduler.hh"

#include <numeric>

#include "common/logging.hh"

namespace disc
{

namespace
{

/** 4-bit bit-reversal, used to interleave proportional slots. */
unsigned
bitrev4(unsigned v)
{
    unsigned r = 0;
    for (unsigned i = 0; i < 4; ++i)
        r |= ((v >> i) & 1u) << (3 - i);
    return r;
}

} // namespace

Scheduler::Scheduler()
{
    reset();
}

void
Scheduler::setSlot(unsigned slot, StreamId s)
{
    if (slot >= kScheduleSlots)
        panic("scheduler slot %u out of range", slot);
    if (s >= kNumStreams)
        panic("scheduler: bad stream %u", s);
    slots_[slot] = s;
    rebuildMemo();
}

StreamId
Scheduler::slot(unsigned i) const
{
    if (i >= kScheduleSlots)
        panic("scheduler slot %u out of range", i);
    return slots_[i];
}

void
Scheduler::setEven(unsigned n)
{
    if (n == 0 || n > kNumStreams)
        fatal("even partition over %u streams is impossible", n);
    for (unsigned i = 0; i < kScheduleSlots; ++i)
        slots_[i] = static_cast<StreamId>(i % n);
    rebuildMemo();
}

void
Scheduler::setShares(const std::array<unsigned, kNumStreams> &shares)
{
    unsigned total = std::accumulate(shares.begin(), shares.end(), 0u);
    if (total != kScheduleSlots) {
        fatal("partition shares sum to %u, need %u", total,
              kScheduleSlots);
    }
    // Fill a dense list stream-by-stream, then spread it with a 4-bit
    // bit-reversal permutation so shares interleave across the frame.
    std::array<StreamId, kScheduleSlots> dense;
    unsigned pos = 0;
    for (StreamId s = 0; s < kNumStreams; ++s) {
        for (unsigned k = 0; k < shares[s]; ++k)
            dense[pos++] = s;
    }
    for (unsigned i = 0; i < kScheduleSlots; ++i)
        slots_[bitrev4(i)] = dense[i];
    rebuildMemo();
}

StreamId
Scheduler::referencePick(unsigned cursor, unsigned ready_mask,
                         Mode mode) const
{
    StreamId owner = slots_[cursor % kScheduleSlots];
    if (ready_mask & (1u << owner))
        return owner;
    if (mode == Mode::Static)
        return kNoStream;

    // Dynamic reallocation: donate the slot to the next ready stream
    // in table order.
    for (unsigned k = 1; k < kScheduleSlots; ++k) {
        StreamId cand = slots_[(cursor + k) % kScheduleSlots];
        if (ready_mask & (1u << cand))
            return cand;
    }
    return kNoStream;
}

void
Scheduler::rebuildMemo()
{
    for (unsigned cursor = 0; cursor < kScheduleSlots; ++cursor) {
        auto next =
            static_cast<std::uint8_t>((cursor + 1) % kScheduleSlots);
        for (unsigned mask = 0; mask < kNumMasks; ++mask) {
            memo_[memoIndex(Mode::Dynamic, cursor, mask)] = {
                referencePick(cursor, mask, Mode::Dynamic), next};
            memo_[memoIndex(Mode::Static, cursor, mask)] = {
                referencePick(cursor, mask, Mode::Static), next};
        }
    }
}

void
Scheduler::reset()
{
    setEven();
    cursor_ = 0;
    mode_ = Mode::Dynamic;
}

void
Scheduler::save(Serializer &out) const
{
    for (StreamId s : slots_)
        out.put(s);
    out.put<std::uint32_t>(cursor_);
    out.put<std::uint8_t>(mode_ == Mode::Dynamic ? 0 : 1);
}

void
Scheduler::restore(Deserializer &in)
{
    for (StreamId &s : slots_) {
        s = in.get<StreamId>();
        if (s >= kNumStreams)
            fatal("checkpoint scheduler slot out of range");
    }
    cursor_ = in.get<std::uint32_t>() % kScheduleSlots;
    mode_ = in.get<std::uint8_t>() ? Mode::Static : Mode::Dynamic;
    rebuildMemo();
}

std::string
Scheduler::describe() const
{
    std::string out;
    for (StreamId s : slots_)
        out += static_cast<char>('0' + s);
    return out;
}

} // namespace disc
