/**
 * @file
 * The asynchronous data bus and its pseudo-DMA interface (paper
 * section 3.6.1).
 *
 * DISC1's data bus is asynchronous because real-time peripherals have
 * wildly different access times. A load/store computes its effective
 * address in the pipe, hands the access to the Asynchronous Bus
 * Interface (ABI) together with the destination register, and the
 * issuing stream enters a wait state. Exactly one access is in flight
 * at a time; further external requests find the bus busy and their
 * streams wait for it to free. When the access completes, the ABI
 * writes the destination register (loads) and re-activates *all*
 * waiting streams.
 */

#ifndef DISC_ARCH_BUS_HH
#define DISC_ARCH_BUS_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/serialize.hh"
#include "common/types.hh"

namespace disc
{

class InterruptUnit;

/** Request a device can make when its event fires. */
struct IntRequest
{
    StreamId stream;
    unsigned bit;
};

/** "No pending expiry" sentinel for Device::nextEventIn(). */
constexpr Cycle kNoDeviceEvent = ~static_cast<Cycle>(0);

class Device;

/**
 * Callback a device uses to tell its timing kernel that the schedule
 * it last reported via nextEventIn() changed for a reason other than
 * a bus access or an event firing (e.g. the host scripted new UART
 * traffic mid-run). The kernel re-queries nextEventIn() in response.
 */
class DeviceScheduleListener
{
  public:
    virtual ~DeviceScheduleListener() = default;
    virtual void deviceScheduleChanged(Device &dev) = 0;
};

/**
 * Abstract bus peripheral. Devices decode an offset within their
 * mapped range, report a per-access latency in bus cycles, and may
 * raise stream interrupts when their scheduled event expires.
 *
 * Timing model: each device keeps device-local time. Instead of being
 * polled every machine cycle, it reports how many local cycles remain
 * until something observable happens (nextEventIn) and the timing
 * kernel advances it in one jump (onEvent) when that moment — or an
 * intervening bus access — arrives. The kernel never advances a
 * device past its reported expiry, so at most one expiry fires per
 * onEvent call.
 */
class Device
{
  public:
    virtual ~Device() = default;

    /** Short name for traces. */
    virtual std::string name() const = 0;

    /**
     * Access time in cycles for the given offset. Zero is legal and
     * models a zero-wait-state device (the stream does not wait).
     */
    virtual unsigned latency(Addr offset, bool is_write) const = 0;

    /** Read the word at @p offset (called when the access completes). */
    virtual Word read(Addr offset) = 0;

    /** Write the word at @p offset. */
    virtual void write(Addr offset, Word value) = 0;

    /**
     * Device-local cycles until the next observable expiry (sample
     * ready, timer fire, RX word, DMA word copied), or kNoDeviceEvent
     * when the device is quiescent. Must be >= 1 when not quiescent.
     */
    virtual Cycle nextEventIn() const { return kNoDeviceEvent; }

    /**
     * Advance device-local time by @p cycles. The caller guarantees
     * cycles >= 1 and cycles <= nextEventIn(), so at most one expiry
     * fires; the expiry's interrupt request (if any) is returned.
     * Semantically equivalent to the legacy per-cycle tick() applied
     * @p cycles times.
     */
    virtual std::optional<IntRequest> onEvent(Cycle cycles)
    {
        (void)cycles;
        return std::nullopt;
    }

    /** Register the timing kernel's reschedule callback. */
    void setScheduleListener(DeviceScheduleListener *listener)
    {
        listener_ = listener;
    }

    /**
     * Serialize device-local mutable state (configuration such as
     * latencies, interrupt wiring or generator functions is not
     * saved; the restoring side must construct an identically
     * configured device).
     */
    virtual void save(Serializer &out) const { (void)out; }

    /** Restore state written by save(). */
    virtual void restore(Deserializer &in) { (void)in; }

  protected:
    /** Tell the kernel the nextEventIn() answer changed out-of-band. */
    void notifyScheduleChanged()
    {
        if (listener_)
            listener_->deviceScheduleChanged(*this);
    }

  private:
    DeviceScheduleListener *listener_ = nullptr;
};

/** Address decoder over the external 16-bit data space. */
class Bus
{
  public:
    /**
     * Map @p device at [base, base+size). Ranges must not overlap.
     * The bus does not own the device.
     */
    void attach(Addr base, Addr size, Device *device);

    /**
     * Decode an address.
     * @param addr   full data address.
     * @param offset receives the offset within the device range.
     * @return the device, or nullptr for an unmapped address.
     */
    Device *decode(Addr addr, Addr &offset) const;

    /** Device at attach index @p i (the timing kernel's source id). */
    Device *deviceAt(std::size_t i) const { return ranges_[i].device; }

    /** Serialize every attached device, in attach order. */
    void saveDevices(Serializer &out) const;

    /** Restore devices saved by saveDevices() (same attach order). */
    void restoreDevices(Deserializer &in);

    /** Number of attached devices. */
    std::size_t numDevices() const { return ranges_.size(); }

  private:
    struct Range
    {
        Addr base;
        Addr size;
        Device *device;
    };

    std::vector<Range> ranges_;
};

/**
 * The ABI: the single outstanding external access plus completion
 * bookkeeping.
 */
class AsyncBusInterface
{
  public:
    /** Destination-register sentinel for stores. */
    static constexpr int kNoDest = -1;

    /** Result of a completed access. */
    struct Completion
    {
        StreamId stream;  ///< the stream that issued the access
        bool isWrite;
        int destReg;      ///< architected register index, or kNoDest
        Word data;        ///< loaded data (reads) / stored data (writes)
        Addr addr;        ///< full bus address
    };

    explicit AsyncBusInterface(Bus &bus);

    /** True while an access is in flight. */
    bool busy() const { return busy_; }

    /**
     * Try to start an access.
     * @param stream    issuing stream.
     * @param addr      full data address.
     * @param is_write  store if true.
     * @param wdata     store data.
     * @param dest_reg  architected destination register (loads).
     * @retval Started  the access was latched; the stream must wait
     *                  unless the device reported zero latency, in
     *                  which case the completion is immediate and
     *                  available via takeImmediate().
     * @retval Busy     another access is in flight.
     * @retval Fault    the address decodes to no device.
     */
    enum class Outcome { Started, Busy, Fault };
    Outcome request(StreamId stream, Addr addr, bool is_write, Word wdata,
                    int dest_reg);

    /**
     * Completion of a zero-latency request made this cycle, if any.
     * Consuming it clears the busy flag.
     */
    std::optional<Completion> takeImmediate();

    /**
     * Advance @p cycles bus cycles at once (the timing kernel calls
     * this at the scheduled completion moment, or when lazily syncing
     * to a boundary). @p cycles must not exceed the remaining access
     * time; semantically equivalent to that many legacy single-cycle
     * ticks.
     * @return the completion record when the in-flight access finishes
     *         at the end of the advanced span.
     */
    std::optional<Completion> advance(Cycle cycles);

    /** Cycles left on the in-flight access (0 when the bus is idle). */
    unsigned remainingCycles() const { return busy_ ? remaining_ : 0; }

    /** Address of the in-flight access (valid only while busy()). */
    Addr pendingAddr() const { return pending_.addr; }

    /** Total cycles the bus spent busy (paper's "data bus busy"). */
    Cycle busyCycles() const { return busyCycles_; }

    /** Completed access count. */
    Cycle completedAccesses() const { return completed_; }

    /** Clear in-flight state and statistics. */
    void reset();

    /** Serialize the in-flight access and counters. */
    void save(Serializer &out) const;

    /** Restore state saved by save(). */
    void restore(Deserializer &in);

  private:
    Bus &bus_;
    bool busy_ = false;
    unsigned remaining_ = 0;
    Completion pending_{};
    std::optional<Completion> immediate_;
    Cycle busyCycles_ = 0;
    Cycle completed_ = 0;

    Completion finish();
};

} // namespace disc

#endif // DISC_ARCH_BUS_HH
