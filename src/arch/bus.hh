/**
 * @file
 * The asynchronous data bus and its pseudo-DMA interface (paper
 * section 3.6.1).
 *
 * DISC1's data bus is asynchronous because real-time peripherals have
 * wildly different access times. A load/store computes its effective
 * address in the pipe, hands the access to the Asynchronous Bus
 * Interface (ABI) together with the destination register, and the
 * issuing stream enters a wait state. Exactly one access is in flight
 * at a time; further external requests find the bus busy and their
 * streams wait for it to free. When the access completes, the ABI
 * writes the destination register (loads) and re-activates *all*
 * waiting streams.
 */

#ifndef DISC_ARCH_BUS_HH
#define DISC_ARCH_BUS_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/serialize.hh"
#include "common/types.hh"

namespace disc
{

class InterruptUnit;

/** Request a device can make when ticked. */
struct IntRequest
{
    StreamId stream;
    unsigned bit;
};

/**
 * Abstract bus peripheral. Devices decode an offset within their
 * mapped range, report a per-access latency in bus cycles, and may
 * raise stream interrupts when ticked.
 */
class Device
{
  public:
    virtual ~Device() = default;

    /** Short name for traces. */
    virtual std::string name() const = 0;

    /**
     * Access time in cycles for the given offset. Zero is legal and
     * models a zero-wait-state device (the stream does not wait).
     */
    virtual unsigned latency(Addr offset, bool is_write) const = 0;

    /** Read the word at @p offset (called when the access completes). */
    virtual Word read(Addr offset) = 0;

    /** Write the word at @p offset. */
    virtual void write(Addr offset, Word value) = 0;

    /**
     * Advance one machine cycle. Devices that generate interrupts
     * (timers, sensors signalling data-ready) return a request.
     */
    virtual std::optional<IntRequest> tick() { return std::nullopt; }

    /**
     * Serialize device-local mutable state (configuration such as
     * latencies, interrupt wiring or generator functions is not
     * saved; the restoring side must construct an identically
     * configured device).
     */
    virtual void save(Serializer &out) const { (void)out; }

    /** Restore state written by save(). */
    virtual void restore(Deserializer &in) { (void)in; }
};

/** Address decoder over the external 16-bit data space. */
class Bus
{
  public:
    /**
     * Map @p device at [base, base+size). Ranges must not overlap.
     * The bus does not own the device.
     */
    void attach(Addr base, Addr size, Device *device);

    /**
     * Decode an address.
     * @param addr   full data address.
     * @param offset receives the offset within the device range.
     * @return the device, or nullptr for an unmapped address.
     */
    Device *decode(Addr addr, Addr &offset) const;

    /** Tick every attached device, collecting interrupt requests. */
    std::vector<IntRequest> tickDevices();

    /** Serialize every attached device, in attach order. */
    void saveDevices(Serializer &out) const;

    /** Restore devices saved by saveDevices() (same attach order). */
    void restoreDevices(Deserializer &in);

    /** Number of attached devices. */
    std::size_t numDevices() const { return ranges_.size(); }

  private:
    struct Range
    {
        Addr base;
        Addr size;
        Device *device;
    };

    std::vector<Range> ranges_;
};

/**
 * The ABI: the single outstanding external access plus completion
 * bookkeeping.
 */
class AsyncBusInterface
{
  public:
    /** Destination-register sentinel for stores. */
    static constexpr int kNoDest = -1;

    /** Result of a completed access. */
    struct Completion
    {
        StreamId stream;  ///< the stream that issued the access
        bool isWrite;
        int destReg;      ///< architected register index, or kNoDest
        Word data;        ///< loaded data (reads) / stored data (writes)
        Addr addr;        ///< full bus address
    };

    explicit AsyncBusInterface(Bus &bus);

    /** True while an access is in flight. */
    bool busy() const { return busy_; }

    /**
     * Try to start an access.
     * @param stream    issuing stream.
     * @param addr      full data address.
     * @param is_write  store if true.
     * @param wdata     store data.
     * @param dest_reg  architected destination register (loads).
     * @retval Started  the access was latched; the stream must wait
     *                  unless the device reported zero latency, in
     *                  which case the completion is immediate and
     *                  available via takeImmediate().
     * @retval Busy     another access is in flight.
     * @retval Fault    the address decodes to no device.
     */
    enum class Outcome { Started, Busy, Fault };
    Outcome request(StreamId stream, Addr addr, bool is_write, Word wdata,
                    int dest_reg);

    /**
     * Completion of a zero-latency request made this cycle, if any.
     * Consuming it clears the busy flag.
     */
    std::optional<Completion> takeImmediate();

    /**
     * Advance one bus cycle.
     * @return the completion record when the in-flight access finishes
     *         this cycle.
     */
    std::optional<Completion> tick();

    /** Total cycles the bus spent busy (paper's "data bus busy"). */
    Cycle busyCycles() const { return busyCycles_; }

    /** Completed access count. */
    Cycle completedAccesses() const { return completed_; }

    /** Clear in-flight state and statistics. */
    void reset();

    /** Serialize the in-flight access and counters. */
    void save(Serializer &out) const;

    /** Restore state saved by save(). */
    void restore(Deserializer &in);

  private:
    Bus &bus_;
    bool busy_ = false;
    unsigned remaining_ = 0;
    Completion pending_{};
    std::optional<Completion> immediate_;
    Cycle busyCycles_ = 0;
    Cycle completed_ = 0;

    Completion finish();
};

} // namespace disc

#endif // DISC_ARCH_BUS_HH
