#include "dcc/ast.hh"

#include <cctype>

#include "common/logging.hh"

namespace disc::dcc
{

namespace
{

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

Tok
keyword(const std::string &word)
{
    if (word == "fn")
        return Tok::KwFn;
    if (word == "var")
        return Tok::KwVar;
    if (word == "if")
        return Tok::KwIf;
    if (word == "else")
        return Tok::KwElse;
    if (word == "while")
        return Tok::KwWhile;
    if (word == "return")
        return Tok::KwReturn;
    return Tok::Ident;
}

} // namespace

std::vector<Token>
lex(const std::string &src)
{
    std::vector<Token> out;
    unsigned line = 1;
    std::size_t i = 0;
    const std::size_t n = src.size();

    auto push = [&](Tok kind) {
        Token t;
        t.kind = kind;
        t.line = line;
        out.push_back(std::move(t));
    };

    while (i < n) {
        char c = src[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // Comments: // to end of line.
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            while (i < n && src[i] != '\n')
                ++i;
            continue;
        }
        if (identStart(c)) {
            std::size_t j = i;
            while (j < n && identChar(src[j]))
                ++j;
            std::string word = src.substr(i, j - i);
            Token t;
            t.kind = keyword(word);
            t.text = word;
            t.line = line;
            out.push_back(std::move(t));
            i = j;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t used = 0;
            long value = 0;
            try {
                if (c == '0' && i + 1 < n &&
                    (src[i + 1] == 'x' || src[i + 1] == 'X')) {
                    value = std::stol(src.substr(i + 2), &used, 16);
                    used += 2;
                } else {
                    value = std::stol(src.substr(i), &used, 10);
                }
            } catch (...) {
                fatal("dcc line %u: bad number", line);
            }
            Token t;
            t.kind = Tok::Number;
            t.value = value;
            t.line = line;
            out.push_back(std::move(t));
            i += used;
            continue;
        }

        auto two = [&](char a, char b) {
            return c == a && i + 1 < n && src[i + 1] == b;
        };
        if (two('<', '<')) { push(Tok::Shl); i += 2; continue; }
        if (two('>', '>')) { push(Tok::Shr); i += 2; continue; }
        if (two('=', '=')) { push(Tok::Eq); i += 2; continue; }
        if (two('!', '=')) { push(Tok::Ne); i += 2; continue; }
        if (two('<', '=')) { push(Tok::Le); i += 2; continue; }
        if (two('&', '&')) { push(Tok::AndAnd); i += 2; continue; }
        if (two('|', '|')) { push(Tok::OrOr); i += 2; continue; }
        if (two('>', '=')) { push(Tok::Ge); i += 2; continue; }

        switch (c) {
          case '(': push(Tok::LParen); break;
          case ')': push(Tok::RParen); break;
          case '{': push(Tok::LBrace); break;
          case '}': push(Tok::RBrace); break;
          case ',': push(Tok::Comma); break;
          case ';': push(Tok::Semi); break;
          case '=': push(Tok::Assign); break;
          case '+': push(Tok::Plus); break;
          case '-': push(Tok::Minus); break;
          case '*': push(Tok::Star); break;
          case '&': push(Tok::Amp); break;
          case '|': push(Tok::Pipe); break;
          case '^': push(Tok::Caret); break;
          case '<': push(Tok::Lt); break;
          case '>': push(Tok::Gt); break;
          case '!': push(Tok::Bang); break;
          default:
            fatal("dcc line %u: unexpected character '%c'", line, c);
        }
        ++i;
    }
    Token end;
    end.kind = Tok::End;
    end.line = line;
    out.push_back(end);
    return out;
}

} // namespace disc::dcc
