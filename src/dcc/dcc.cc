#include "dcc/dcc.hh"

#include "dcc/ast.hh"

namespace disc::dcc
{

std::string
compile(const std::string &source)
{
    return generate(parse(lex(source)));
}

} // namespace disc::dcc
