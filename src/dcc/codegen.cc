#include "dcc/ast.hh"

#include <map>
#include <set>

#include "common/logging.hh"
#include "common/types.hh"

namespace disc::dcc
{

namespace
{

/**
 * Code generator.
 *
 * Frame model (the stack-window calling convention):
 *
 *   - the caller moves arguments into g0..g3 and executes CALL, which
 *     pushes the return address into the callee's new r0;
 *   - each parameter and each `var` gets one window slot, claimed by
 *     WINC at its definition point (a variable-size frame);
 *   - expression evaluation maintains the invariant "net push of one
 *     slot, value in r0": temporaries never sit deeper than r1, so
 *     only *variable* accesses can exceed the eight window names, and
 *     those fall back to AWP arithmetic through the g3 scratch;
 *   - `return` moves the value to g0 and executes RET n with n equal
 *     to the live local count, unwinding the whole frame at once.
 */
class CodeGen
{
  public:
    explicit CodeGen(const Unit &unit)
        : unit_(unit)
    {}

    std::string
    run()
    {
        collectSignatures();
        emit(".org 0x20");
        emit("__start:");
        emit("    call main");
        emit("    halt");
        for (const Function &f : unit_.functions)
            function(f);
        // Spawn wrappers: a stream entry that runs the function to
        // completion and deactivates.
        for (const std::string &name : spawned_) {
            emitf("__spawn_%s:", name.c_str());
            emitf("    call %s", name.c_str());
            emit("    halt");
        }
        return out_;
    }

  private:
    const Unit &unit_;
    std::string out_;
    std::map<std::string, std::size_t> arity_;
    unsigned labelCounter_ = 0;

    /** Functions needing a spawn wrapper (entry + halt). */
    std::set<std::string> spawned_;

    // Per-function state.
    const Function *fn_ = nullptr;
    /** Live locals, innermost last: (name, slot index). */
    std::vector<std::pair<std::string, unsigned>> scope_;
    /** Open-scope marks: scope_ size at each block entry. */
    std::vector<std::size_t> blockMarks_;
    unsigned tempDepth_ = 0;

    [[noreturn]] void
    err(unsigned line, const std::string &what) const
    {
        fatal("dcc line %u: %s", line, what.c_str());
    }

    void
    emit(const std::string &line)
    {
        out_ += line;
        out_ += '\n';
    }

    void
    emitf(const char *fmt, auto... args)
    {
        emit(strprintf(fmt, args...));
    }

    std::string
    newLabel(const char *stem)
    {
        return strprintf(".L%s_%s_%u", fn_->name.c_str(), stem,
                         ++labelCounter_);
    }

    static bool
    isBuiltin(const std::string &name)
    {
        return name == "load" || name == "store" || name == "xload" ||
               name == "xstore" || name == "halt" || name == "spawn" ||
               name == "schedule" || name == "signal";
    }

    void
    collectSignatures()
    {
        bool has_main = false;
        for (const Function &f : unit_.functions) {
            if (isBuiltin(f.name))
                err(f.line, "'" + f.name + "' is a builtin name");
            if (arity_.count(f.name))
                err(f.line, "duplicate function '" + f.name + "'");
            if (f.params.size() > kNumGlobalRegs) {
                err(f.line,
                    "functions take at most 4 parameters");
            }
            arity_[f.name] = f.params.size();
            has_main |= f.name == "main";
        }
        if (!has_main)
            fatal("dcc: no 'main' function defined");
    }

    unsigned
    liveLocals() const
    {
        return static_cast<unsigned>(scope_.size());
    }

    /** Window offset of a local at the current temp depth. */
    unsigned
    slotOffset(unsigned slot) const
    {
        return (liveLocals() - 1 - slot) + tempDepth_;
    }

    const std::pair<std::string, unsigned> *
    findVar(const std::string &name) const
    {
        for (auto it = scope_.rbegin(); it != scope_.rend(); ++it) {
            if (it->first == name)
                return &*it;
        }
        return nullptr;
    }

    void
    defineVar(const std::string &name, unsigned line)
    {
        std::size_t mark =
            blockMarks_.empty() ? 0 : blockMarks_.back();
        for (std::size_t i = mark; i < scope_.size(); ++i) {
            if (scope_[i].first == name)
                err(line, "duplicate variable '" + name + "'");
        }
        unsigned slot = liveLocals();
        if (slot >= 15)
            err(line, "too many locals (at most 15 per frame)");
        scope_.emplace_back(name, slot);
    }

    /** Read the window slot at @p offset into r0 (just pushed). */
    void
    readSlot(unsigned offset)
    {
        if (offset < kNumWindowRegs) {
            emitf("    mov r0, r%u", offset);
        } else {
            emit("    mov g3, awp");
            emitf("    subi g3, g3, %u", offset);
            emit("    ldm r0, [g3]");
        }
    }

    /** Write r0 into the window slot at @p offset. */
    void
    writeSlot(unsigned offset)
    {
        if (offset < kNumWindowRegs) {
            emitf("    mov r%u, r0", offset);
        } else {
            emit("    mov g3, awp");
            emitf("    subi g3, g3, %u", offset);
            emit("    stm r0, [g3]");
        }
    }

    /** Push a 16-bit constant. */
    void
    pushConstant(long value, unsigned line)
    {
        if (value < -32768 || value > 65535)
            err(line, "constant does not fit in 16 bits");
        Word w = static_cast<Word>(value);
        emit("    winc");
        ++tempDepth_;
        if (value >= -2048 && value <= 2047) {
            emitf("    ldi r0, %ld", value);
        } else {
            emitf("    ldi r0, %u", w & 0xff);
            emitf("    ldih r0, %u", (w >> 8) & 0xff);
        }
    }

    /** Branch mnemonic that tests "lhs OP rhs" after cmp lhs, rhs. */
    static const char *
    branchFor(Tok op)
    {
        switch (op) {
          case Tok::Eq: return "beq";
          case Tok::Ne: return "bne";
          case Tok::Lt: return "blt";
          case Tok::Le: return "ble"; // handled via swap below
          case Tok::Gt: return "bgt"; // handled via swap below
          case Tok::Ge: return "bge";
          default: return nullptr;
        }
    }

    void
    expression(const Expr &e)
    {
        switch (e.kind) {
          case Expr::Kind::Number:
            pushConstant(e.value, e.line);
            return;
          case Expr::Kind::Var: {
            const auto *var = findVar(e.name);
            if (!var)
                err(e.line, "undefined variable '" + e.name + "'");
            emit("    winc");
            ++tempDepth_;
            readSlot(slotOffset(var->second));
            return;
          }
          case Expr::Kind::Unary:
            expression(*e.lhs);
            if (e.op == Tok::Bang) {
                // Logical not: 0 -> 1, nonzero -> 0. LDI leaves the
                // flags of the cmpi intact.
                std::string done = newLabel("not");
                emit("    cmpi r0, 0");
                emit("    ldi r0, 1");
                emitf("    beq %s", done.c_str());
                emit("    ldi r0, 0");
                emit(done + ":");
            } else {
                emit("    neg r0, r0");
            }
            return;
          case Expr::Kind::Binary:
            binary(e);
            return;
          case Expr::Kind::Call:
            call(e);
            return;
        }
        panic("dcc: unhandled expression kind");
    }

    void
    binary(const Expr &e)
    {
        if (e.op == Tok::AndAnd || e.op == Tok::OrOr) {
            // Short-circuit evaluation with a 0/1 result. Both paths
            // end with exactly one pushed slot.
            bool is_and = e.op == Tok::AndAnd;
            std::string skip = newLabel(is_and ? "and" : "or");
            std::string done = newLabel("bool");
            expression(*e.lhs);
            emit("    cmpi r0, 0");
            emit("    wdec");
            --tempDepth_;
            emitf("    %s %s", is_and ? "beq" : "bne", skip.c_str());
            expression(*e.rhs);
            emit("    cmpi r0, 0");
            emit("    wdec");
            --tempDepth_;
            emitf("    %s %s", is_and ? "beq" : "bne", skip.c_str());
            emit("    winc");
            emitf("    ldi r0, %d", is_and ? 1 : 0);
            emitf("    jmp %s", done.c_str());
            emit(skip + ":");
            emit("    winc");
            emitf("    ldi r0, %d", is_and ? 0 : 1);
            emit(done + ":");
            ++tempDepth_;
            return;
        }

        const char *alu = nullptr;
        switch (e.op) {
          case Tok::Plus: alu = "add"; break;
          case Tok::Minus: alu = "sub"; break;
          case Tok::Star: alu = "mul"; break;
          case Tok::Amp: alu = "and"; break;
          case Tok::Pipe: alu = "or"; break;
          case Tok::Caret: alu = "xor"; break;
          case Tok::Shl: alu = "shl"; break;
          case Tok::Shr: alu = "shr"; break;
          default: break;
        }

        expression(*e.lhs);
        expression(*e.rhs);
        // Left at r1, right at r0.
        if (alu) {
            emitf("    %s r1, r1, r0", alu);
            emit("    wdec");
            --tempDepth_;
            return;
        }

        // Comparison producing 0/1. "<=" and ">" have no direct
        // condition code; swap the compare instead.
        Tok op = e.op;
        bool swap = op == Tok::Le || op == Tok::Gt;
        if (op == Tok::Le)
            op = Tok::Ge;
        else if (op == Tok::Gt)
            op = Tok::Lt;
        const char *branch = branchFor(op);
        if (!branch)
            panic("dcc: unhandled binary operator");
        std::string done = newLabel("cmp");
        if (swap)
            emit("    cmp r0, r1");
        else
            emit("    cmp r1, r0");
        emit("    ldi r1, 1");
        emitf("    %s %s", branch, done.c_str());
        emit("    ldi r1, 0");
        emit(done + ":");
        emit("    wdec");
        --tempDepth_;
    }

    void
    call(const Expr &e)
    {
        if (e.name == "halt") {
            if (!e.args.empty())
                err(e.line, "halt() takes no arguments");
            emit("    halt");
            // Unreachable, but keep the push invariant.
            emit("    winc");
            ++tempDepth_;
            emit("    ldi r0, 0");
            return;
        }
        if (e.name == "load" || e.name == "xload") {
            if (e.args.size() != 1)
                err(e.line, e.name + "() takes one argument");
            expression(*e.args[0]);
            emitf("    %s r0, [r0]",
                  e.name == "load" ? "ldm" : "ld");
            return;
        }
        if (e.name == "store" || e.name == "xstore") {
            if (e.args.size() != 2)
                err(e.line, e.name + "() takes (address, value)");
            expression(*e.args[0]); // address -> r1 after next push
            expression(*e.args[1]); // value -> r0
            emitf("    %s r0, [r1]",
                  e.name == "store" ? "stm" : "st");
            emit("    mov r1, r0");
            emit("    wdec");
            --tempDepth_;
            return;
        }

        if (e.name == "spawn") {
            // spawn(STREAM, fname): start a zero-argument function on
            // another instruction stream (FORK to a wrapper).
            if (e.args.size() != 2 ||
                e.args[0]->kind != Expr::Kind::Number ||
                e.args[1]->kind != Expr::Kind::Var) {
                err(e.line,
                    "spawn() takes (stream literal, function name)");
            }
            long stream = e.args[0]->value;
            if (stream < 0 || stream >= kNumStreams)
                err(e.line, "spawn(): stream must be 0..3");
            const std::string &callee = e.args[1]->name;
            auto target = arity_.find(callee);
            if (target == arity_.end())
                err(e.line, "undefined function '" + callee + "'");
            if (target->second != 0)
                err(e.line, "spawned functions take no parameters");
            spawned_.insert(callee);
            emitf("    fork %ld, __spawn_%s", stream, callee.c_str());
            emit("    winc");
            ++tempDepth_;
            emit("    ldi r0, 0");
            return;
        }
        if (e.name == "schedule") {
            // schedule(SLOT, STREAM): program the partition table.
            if (e.args.size() != 2 ||
                e.args[0]->kind != Expr::Kind::Number ||
                e.args[1]->kind != Expr::Kind::Number) {
                err(e.line,
                    "schedule() takes (slot literal, stream literal)");
            }
            long slot = e.args[0]->value;
            long stream = e.args[1]->value;
            if (slot < 0 || slot >= kScheduleSlots)
                err(e.line, "schedule(): slot must be 0..15");
            if (stream < 0 || stream >= kNumStreams)
                err(e.line, "schedule(): stream must be 0..3");
            emitf("    sched %ld, %ld", slot, stream);
            emit("    winc");
            ++tempDepth_;
            emit("    ldi r0, 0");
            return;
        }
        if (e.name == "signal") {
            // signal(STREAM, BIT): software interrupt.
            if (e.args.size() != 2 ||
                e.args[0]->kind != Expr::Kind::Number ||
                e.args[1]->kind != Expr::Kind::Number) {
                err(e.line,
                    "signal() takes (stream literal, bit literal)");
            }
            long stream = e.args[0]->value;
            long bit = e.args[1]->value;
            if (stream < 0 || stream >= kNumStreams)
                err(e.line, "signal(): stream must be 0..3");
            if (bit < 0 || bit > 7)
                err(e.line, "signal(): bit must be 0..7");
            emitf("    swi %ld, %ld", stream, bit);
            emit("    winc");
            ++tempDepth_;
            emit("    ldi r0, 0");
            return;
        }

        auto it = arity_.find(e.name);
        if (it == arity_.end())
            err(e.line, "undefined function '" + e.name + "'");
        if (e.args.size() != it->second) {
            err(e.line,
                strprintf("'%s' expects %zu argument(s), got %zu",
                          e.name.c_str(), it->second, e.args.size()));
        }

        for (const ExprPtr &arg : e.args)
            expression(*arg);
        // Args sit at r(n-1)..r0, first argument deepest.
        unsigned n = static_cast<unsigned>(e.args.size());
        for (unsigned i = 0; i < n; ++i)
            emitf("    mov g%u, r%u", i, n - 1 - i);
        for (unsigned i = 0; i < n; ++i) {
            emit("    wdec");
            --tempDepth_;
        }
        emitf("    call %s", e.name.c_str());
        emit("    winc");
        ++tempDepth_;
        emit("    mov r0, g0");
    }

    /** A bare `var` as an if/while body would leak a slot per hit. */
    void
    requireNonVarBody(const Stmt &s) const
    {
        for (const auto *branch : {&s.body, &s.els}) {
            if (!branch->empty() &&
                branch->front()->kind == Stmt::Kind::Var) {
                err(branch->front()->line,
                    "'var' here needs an enclosing block");
            }
        }
    }

    void
    statement(const Stmt &s)
    {
        switch (s.kind) {
          case Stmt::Kind::Var: {
            expression(*s.value);
            // The pushed temp *becomes* the local: transfer ownership
            // from the temp stack to the scope.
            --tempDepth_;
            defineVar(s.name, s.line);
            return;
          }
          case Stmt::Kind::Assign: {
            const auto *var = findVar(s.name);
            if (!var)
                err(s.line, "undefined variable '" + s.name + "'");
            expression(*s.value);
            writeSlot(slotOffset(var->second));
            emit("    wdec");
            --tempDepth_;
            return;
          }
          case Stmt::Kind::If: {
            requireNonVarBody(s);
            std::string else_label = newLabel("else");
            std::string end_label = newLabel("endif");
            expression(*s.cond);
            emit("    cmpi r0, 0");
            emit("    wdec");
            --tempDepth_;
            emitf("    beq %s", else_label.c_str());
            statement(*s.body.front());
            if (!s.els.empty())
                emitf("    jmp %s", end_label.c_str());
            emit(else_label + ":");
            if (!s.els.empty()) {
                statement(*s.els.front());
                emit(end_label + ":");
            }
            return;
          }
          case Stmt::Kind::While: {
            requireNonVarBody(s);
            std::string top = newLabel("while");
            std::string end = newLabel("endwhile");
            emit(top + ":");
            expression(*s.cond);
            emit("    cmpi r0, 0");
            emit("    wdec");
            --tempDepth_;
            emitf("    beq %s", end.c_str());
            statement(*s.body.front());
            emitf("    jmp %s", top.c_str());
            emit(end + ":");
            return;
          }
          case Stmt::Kind::Return: {
            if (s.value) {
                expression(*s.value);
                emit("    mov g0, r0");
                emit("    wdec");
                --tempDepth_;
            } else {
                emit("    ldi g0, 0");
            }
            emitf("    ret %u", liveLocals());
            return;
          }
          case Stmt::Kind::ExprStmt:
            expression(*s.value);
            emit("    wdec");
            --tempDepth_;
            return;
          case Stmt::Kind::Block: {
            blockMarks_.push_back(scope_.size());
            for (const StmtPtr &inner : s.body)
                statement(*inner);
            std::size_t mark = blockMarks_.back();
            blockMarks_.pop_back();
            while (scope_.size() > mark) {
                emit("    wdec");
                scope_.pop_back();
            }
            return;
          }
        }
        panic("dcc: unhandled statement kind");
    }

    void
    function(const Function &f)
    {
        fn_ = &f;
        scope_.clear();
        blockMarks_.clear();
        tempDepth_ = 0;

        emitf("%s:", f.name.c_str());
        // Prologue: claim one slot per parameter and copy it in.
        for (std::size_t i = 0; i < f.params.size(); ++i) {
            emit("    winc");
            emitf("    mov r0, g%zu", i);
            defineVar(f.params[i],
                      f.line); // duplicates rejected here too
        }
        for (const StmtPtr &s : f.body)
            statement(*s);
        // Implicit `return 0` for functions that fall off the end.
        emit("    ldi g0, 0");
        emitf("    ret %u", liveLocals());
        fn_ = nullptr;
    }
};

} // namespace

std::string
generate(const Unit &unit)
{
    return CodeGen(unit).run();
}

} // namespace disc::dcc
