#include "dcc/ast.hh"

#include "common/logging.hh"

namespace disc::dcc
{

namespace
{

/** Recursive-descent parser with precedence climbing. */
class Parser
{
  public:
    explicit Parser(std::vector<Token> tokens)
        : toks_(std::move(tokens))
    {}

    Unit
    run()
    {
        Unit unit;
        while (peek().kind != Tok::End)
            unit.functions.push_back(function());
        return unit;
    }

  private:
    std::vector<Token> toks_;
    std::size_t pos_ = 0;

    const Token &peek(std::size_t ahead = 0) const
    {
        std::size_t i = pos_ + ahead;
        return i < toks_.size() ? toks_[i] : toks_.back();
    }

    Token
    next()
    {
        Token t = peek();
        if (pos_ < toks_.size() - 1)
            ++pos_;
        return t;
    }

    [[noreturn]] void
    err(const Token &at, const std::string &what) const
    {
        fatal("dcc line %u: %s", at.line, what.c_str());
    }

    Token
    expect(Tok kind, const char *what)
    {
        if (peek().kind != kind)
            err(peek(), strprintf("expected %s", what));
        return next();
    }

    Function
    function()
    {
        Token fn = expect(Tok::KwFn, "'fn'");
        Function f;
        f.line = fn.line;
        f.name = expect(Tok::Ident, "function name").text;
        expect(Tok::LParen, "'('");
        if (peek().kind != Tok::RParen) {
            for (;;) {
                f.params.push_back(
                    expect(Tok::Ident, "parameter name").text);
                if (peek().kind != Tok::Comma)
                    break;
                next();
            }
        }
        expect(Tok::RParen, "')'");
        expect(Tok::LBrace, "'{'");
        while (peek().kind != Tok::RBrace)
            f.body.push_back(statement());
        expect(Tok::RBrace, "'}'");
        return f;
    }

    StmtPtr
    makeStmt(Stmt::Kind kind, unsigned line)
    {
        auto s = std::make_unique<Stmt>();
        s->kind = kind;
        s->line = line;
        return s;
    }

    StmtPtr
    statement()
    {
        const Token &t = peek();
        switch (t.kind) {
          case Tok::KwVar: {
            next();
            auto s = makeStmt(Stmt::Kind::Var, t.line);
            s->name = expect(Tok::Ident, "variable name").text;
            expect(Tok::Assign, "'='");
            s->value = expression();
            expect(Tok::Semi, "';'");
            return s;
          }
          case Tok::KwIf: {
            next();
            auto s = makeStmt(Stmt::Kind::If, t.line);
            expect(Tok::LParen, "'('");
            s->cond = expression();
            expect(Tok::RParen, "')'");
            s->body.push_back(statement());
            if (peek().kind == Tok::KwElse) {
                next();
                s->els.push_back(statement());
            }
            return s;
          }
          case Tok::KwWhile: {
            next();
            auto s = makeStmt(Stmt::Kind::While, t.line);
            expect(Tok::LParen, "'('");
            s->cond = expression();
            expect(Tok::RParen, "')'");
            s->body.push_back(statement());
            return s;
          }
          case Tok::KwReturn: {
            next();
            auto s = makeStmt(Stmt::Kind::Return, t.line);
            if (peek().kind != Tok::Semi)
                s->value = expression();
            expect(Tok::Semi, "';'");
            return s;
          }
          case Tok::LBrace: {
            next();
            auto s = makeStmt(Stmt::Kind::Block, t.line);
            while (peek().kind != Tok::RBrace)
                s->body.push_back(statement());
            expect(Tok::RBrace, "'}'");
            return s;
          }
          case Tok::Ident: {
            // assignment or call-statement
            if (peek(1).kind == Tok::Assign) {
                auto s = makeStmt(Stmt::Kind::Assign, t.line);
                s->name = next().text;
                next(); // '='
                s->value = expression();
                expect(Tok::Semi, "';'");
                return s;
            }
            auto s = makeStmt(Stmt::Kind::ExprStmt, t.line);
            s->value = expression();
            expect(Tok::Semi, "';'");
            return s;
          }
          default:
            err(t, "expected a statement");
        }
    }

    static int
    precedence(Tok op)
    {
        switch (op) {
          case Tok::OrOr:
            return 1;
          case Tok::AndAnd:
            return 2;
          case Tok::Eq: case Tok::Ne: case Tok::Lt: case Tok::Le:
          case Tok::Gt: case Tok::Ge:
            return 3;
          case Tok::Pipe:
            return 4;
          case Tok::Caret:
            return 5;
          case Tok::Amp:
            return 6;
          case Tok::Shl: case Tok::Shr:
            return 7;
          case Tok::Plus: case Tok::Minus:
            return 8;
          case Tok::Star:
            return 9;
          default:
            return 0;
        }
    }

    ExprPtr
    makeExpr(Expr::Kind kind, unsigned line)
    {
        auto e = std::make_unique<Expr>();
        e->kind = kind;
        e->line = line;
        return e;
    }

    ExprPtr
    expression(int min_prec = 1)
    {
        ExprPtr lhs = unary();
        for (;;) {
            Tok op = peek().kind;
            int prec = precedence(op);
            if (prec < min_prec)
                return lhs;
            unsigned line = next().line;
            ExprPtr rhs = expression(prec + 1);
            auto e = makeExpr(Expr::Kind::Binary, line);
            e->op = op;
            e->lhs = std::move(lhs);
            e->rhs = std::move(rhs);
            lhs = std::move(e);
        }
    }

    ExprPtr
    unary()
    {
        const Token &t = peek();
        if (t.kind == Tok::Minus || t.kind == Tok::Bang) {
            next();
            auto e = makeExpr(Expr::Kind::Unary, t.line);
            e->op = t.kind;
            e->lhs = unary();
            return e;
        }
        return primary();
    }

    ExprPtr
    primary()
    {
        Token t = next();
        switch (t.kind) {
          case Tok::Number: {
            auto e = makeExpr(Expr::Kind::Number, t.line);
            e->value = t.value;
            return e;
          }
          case Tok::Ident: {
            if (peek().kind == Tok::LParen) {
                next();
                auto e = makeExpr(Expr::Kind::Call, t.line);
                e->name = t.text;
                if (peek().kind != Tok::RParen) {
                    for (;;) {
                        e->args.push_back(expression());
                        if (peek().kind != Tok::Comma)
                            break;
                        next();
                    }
                }
                expect(Tok::RParen, "')'");
                return e;
            }
            auto e = makeExpr(Expr::Kind::Var, t.line);
            e->name = t.text;
            return e;
          }
          case Tok::LParen: {
            ExprPtr e = expression();
            expect(Tok::RParen, "')'");
            return e;
          }
          default:
            err(t, "expected an expression");
        }
    }
};

} // namespace

Unit
parse(std::vector<Token> tokens)
{
    return Parser(std::move(tokens)).run();
}

} // namespace disc::dcc
