/**
 * @file
 * DCC — the DISC C-like compiler.
 *
 * The paper's conclusion lists "compiler ... questions" as future
 * work; DCC answers the central one: how does compiled code use the
 * stack window? Every function gets a variable-size window frame
 * (CALL pushes the return address, the prologue claims one slot per
 * local, RET n unwinds), expression temporaries are pushed and popped
 * with window motion, and arguments/results travel in the shared
 * globals g0..g3.
 *
 * Language summary:
 *
 *   fn name(a, b) { ... }        up to 4 parameters, 16-bit ints
 *   var x = expr;                function-local variable
 *   x = expr;                    assignment
 *   if (cond) {...} else {...}   while (cond) {...}
 *   return expr;                 return
 *   f(x, y)                      calls (recursion works)
 *
 * Expressions: + - * & | ^ << >> with unary -, parentheses, decimal
 * and 0x literals. Conditions: == != < <= > >= between expressions,
 * or any expression (tested against zero).
 *
 * Builtins: load(a) / store(a, v) for internal memory,
 * xload(a) / xstore(a, v) for the external bus, halt().
 *
 * Compilation model invariants (see codegen.cc):
 *  - evaluating any expression performs a net window push of one
 *    slot and leaves the value in r0;
 *  - at statement boundaries the window holds exactly the function's
 *    locals plus the return address;
 *  - frame slots beyond the 8 addressable window names are reached
 *    through AWP arithmetic via the g3 scratch register.
 */

#ifndef DISC_DCC_DCC_HH
#define DISC_DCC_DCC_HH

#include <string>

namespace disc::dcc
{

/**
 * Compile DCC source to DISC1 assembly text (assemble() ready).
 * The generated program defines a `__start` entry that calls `main`
 * and halts; `main` must exist.
 * @throws FatalError on lexical, syntax or semantic errors (messages
 *         carry line numbers).
 */
std::string compile(const std::string &source);

} // namespace disc::dcc

#endif // DISC_DCC_DCC_HH
