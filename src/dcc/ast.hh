/**
 * @file
 * Tokens and abstract syntax tree for DCC (internal header).
 */

#ifndef DISC_DCC_AST_HH
#define DISC_DCC_AST_HH

#include <memory>
#include <string>
#include <vector>

namespace disc::dcc
{

/** Token kinds produced by the lexer. */
enum class Tok
{
    End,
    Ident,
    Number,
    // keywords
    KwFn, KwVar, KwIf, KwElse, KwWhile, KwReturn,
    // punctuation
    LParen, RParen, LBrace, RBrace, Comma, Semi,
    // operators
    Assign, Plus, Minus, Star, Amp, Pipe, Caret, Shl, Shr,
    Eq, Ne, Lt, Le, Gt, Ge,
    AndAnd, OrOr, Bang,
};

/** One lexed token. */
struct Token
{
    Tok kind = Tok::End;
    std::string text;   ///< identifier spelling
    long value = 0;     ///< number value
    unsigned line = 0;
};

/** Lex the whole source. @throws FatalError on bad characters. */
std::vector<Token> lex(const std::string &source);

// ---- AST ----

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/** Expression node. */
struct Expr
{
    enum class Kind
    {
        Number,   ///< literal (value)
        Var,      ///< variable reference (name)
        Unary,    ///< -a (lhs)
        Binary,   ///< lhs op rhs (op is a Tok)
        Call,     ///< name(args) — user function or builtin
    };

    Kind kind;
    unsigned line = 0;
    long value = 0;
    std::string name;
    Tok op = Tok::Plus;
    ExprPtr lhs;
    ExprPtr rhs;
    std::vector<ExprPtr> args;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/** Statement node. */
struct Stmt
{
    enum class Kind
    {
        Var,      ///< var name = init;
        Assign,   ///< name = value;
        If,       ///< if (cond) then else els
        While,    ///< while (cond) body
        Return,   ///< return value;
        ExprStmt, ///< expression for effect (calls)
        Block,    ///< { body... }
    };

    Kind kind;
    unsigned line = 0;
    std::string name;
    ExprPtr value;
    ExprPtr cond;
    std::vector<StmtPtr> body;
    std::vector<StmtPtr> els;
};

/** One function definition. */
struct Function
{
    std::string name;
    unsigned line = 0;
    std::vector<std::string> params;
    std::vector<StmtPtr> body;
};

/** A whole translation unit. */
struct Unit
{
    std::vector<Function> functions;
};

/** Parse tokens into a unit. @throws FatalError on syntax errors. */
Unit parse(std::vector<Token> tokens);

/** Generate DISC1 assembly for a unit. @throws FatalError. */
std::string generate(const Unit &unit);

} // namespace disc::dcc

#endif // DISC_DCC_AST_HH
