/**
 * @file
 * Behavioural coverage map for the coverage-guided fuzzer.
 *
 * A coverage point is the triple (opcode, pipeline event, number of
 * active streams at the time): "an ST was squashed by a bus wait while
 * three streams were live" is a different point from the same squash
 * with one stream live. The fuzzer keeps a generated program in its
 * corpus exactly when running it lights up at least one point no
 * earlier input has reached, which steers the random search toward
 * the interleaving-dependent corners the DISC paper's claims live in.
 */

#ifndef DISC_VERIFY_COVERAGE_HH
#define DISC_VERIFY_COVERAGE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/opcodes.hh"
#include "sim/observer.hh"

namespace disc
{

/** Dense hit-count map over (opcode × pipe event × active streams). */
class CoverageMap
{
  public:
    CoverageMap();

    /** Record one event with @p active streams live (0..kNumStreams). */
    void record(Opcode op, PipeEvent ev, unsigned active);

    /** Number of distinct points hit at least once. */
    std::size_t pointsHit() const;

    /** Total number of representable points. */
    std::size_t pointsTotal() const { return hits_.size(); }

    /** Points hit in @p other that this map has never seen. */
    std::size_t countNew(const CoverageMap &other) const;

    /** Fold @p other's hits into this map. */
    void merge(const CoverageMap &other);

    /** Clear all hit counts. */
    void clear();

  private:
    // Indexed [op][event][active]; one 32-bit saturating counter each.
    std::vector<std::uint32_t> hits_;

    static std::size_t index(Opcode op, PipeEvent ev, unsigned active);
};

} // namespace disc

#endif // DISC_VERIFY_COVERAGE_HH
