/**
 * @file
 * Behavioural coverage map for the coverage-guided fuzzer.
 *
 * A coverage point is the tuple (opcode, pipeline event, number of
 * active streams at the time, event-skip taken, dispatch path): "an
 * ST was squashed by a bus wait while three streams were live" is a
 * different point from the same squash with one stream live, and both
 * differ again depending on whether the run has exercised the timing
 * kernel's fast-forward path and whether execute dispatched through
 * the micro-op table or the legacy opcode switch. The fuzzer keeps a
 * generated program in its corpus exactly when running it lights up
 * at least one point no earlier input has reached, which steers the
 * random search toward the interleaving-dependent corners the DISC
 * paper's claims live in.
 *
 * Superblock bail reasons are a second, much smaller point family:
 * each SbBail value the run triggered at least once is its own
 * coverage point, so the corpus keeps inputs that drive the
 * translation tier out through exits (interrupt expiry, ABI waits,
 * budget edges) earlier inputs never took. Batch peel reasons are a
 * third family of the same shape: each BatchPeel value a batched
 * replay triggered keeps inputs that push lanes out of the lockstep
 * hot lane through distinct exits (event horizon, excluded ops,
 * stalls, opt-outs). Board device types are a fourth family: each
 * registry device type a generated board composed at least once is
 * its own point, so the board-axis corpus keeps specs that exercise
 * peripherals earlier boards never placed on the bus.
 */

#ifndef DISC_VERIFY_COVERAGE_HH
#define DISC_VERIFY_COVERAGE_HH

#include <cstdint>
#include <vector>

#include "board/registry.hh"
#include "common/types.hh"
#include "isa/opcodes.hh"
#include "sim/batch.hh"
#include "sim/observer.hh"
#include "sim/superblock.hh"

namespace disc
{

/**
 * Dense hit-count map over (opcode × pipe event × active streams ×
 * event-skip taken × dispatch path).
 */
class CoverageMap
{
  public:
    CoverageMap();

    /**
     * Record one event with @p active streams live (0..kNumStreams).
     * @p skip_taken says whether the run has fast-forwarded at least
     * once by event time — the same behaviour reached with and
     * without the event-skip path engaged counts as two points.
     * @p uop_dispatch says whether execute runs through the micro-op
     * handler table; the legacy-switch replay of a behaviour is its
     * own point for the same reason.
     */
    void record(Opcode op, PipeEvent ev, unsigned active,
                bool skip_taken = false, bool uop_dispatch = true);

    /** Record that the superblock tier bailed for reason @p b. */
    void recordBail(SbBail b);

    /** Record that a batched lane peeled to scalar for reason @p p. */
    void recordPeel(BatchPeel p);

    /**
     * Record that a generated board composed a device of registry
     * type index @p type (DeviceRegistry::typeIndex()).
     */
    void recordBoardDevice(std::size_t type);

    /** Number of distinct points hit at least once. */
    std::size_t pointsHit() const;

    /** Total number of representable points. */
    std::size_t pointsTotal() const { return hits_.size(); }

    /** Points hit in @p other that this map has never seen. */
    std::size_t countNew(const CoverageMap &other) const;

    /** Fold @p other's hits into this map. */
    void merge(const CoverageMap &other);

    /** Clear all hit counts. */
    void clear();

  private:
    // Indexed [op][event][active][skip][uop]; one 32-bit saturating
    // counter each. The superblock bail-reason points live in a
    // kNumSbBails-long tail after the dense block, followed by a
    // kNumBatchPeels-long tail for the batch peel reasons and a
    // kNumBoardDeviceTypes-long tail for board device types.
    std::vector<std::uint32_t> hits_;

    static std::size_t index(Opcode op, PipeEvent ev, unsigned active,
                             bool skip_taken, bool uop_dispatch);
};

} // namespace disc

#endif // DISC_VERIFY_COVERAGE_HH
