#include "verify/invariants.hh"

#include "common/logging.hh"

namespace disc
{

namespace
{
constexpr std::size_t kMaxStoredViolations = 32;
} // namespace

InvariantChecker::InvariantChecker(const Machine &m) : m_(m)
{
    resync();
}

void
InvariantChecker::resync()
{
    for (StreamId s = 0; s < kNumStreams; ++s) {
        shadow_[s] =
            m_.isWaiting(s) ? ShadowWait::Waiting : ShadowWait::Ready;
    }
    violations_.clear();
    totalViolations_ = 0;
}

void
InvariantChecker::fail(std::string message)
{
    ++totalViolations_;
    if (violations_.size() < kMaxStoredViolations)
        violations_.push_back({m_.stats().cycles, std::move(message)});
}

unsigned
InvariantChecker::activeStreams() const
{
    unsigned n = 0;
    for (StreamId s = 0; s < kNumStreams; ++s)
        n += m_.interrupts().isActive(s);
    return n;
}

void
InvariantChecker::onIssue(StreamId s, StreamId slot_owner,
                          unsigned ready_mask, PAddr pc,
                          const Instruction &inst)
{
    (void)inst;
    if (s >= kNumStreams) {
        fail(strprintf("issued from nonexistent stream %u", s));
        return;
    }
    if (!((ready_mask >> s) & 1)) {
        fail(strprintf("stream %u issued (pc %u) without its ready bit "
                       "(mask 0x%x)",
                       s, pc, ready_mask));
    }
    if (!m_.interrupts().isActive(s)) {
        fail(strprintf("stream %u issued (pc %u) while inactive "
                       "(IR&MR == 0)",
                       s, pc));
    }
    if (m_.isWaiting(s)) {
        fail(strprintf("stream %u issued (pc %u) while in an ABI wait "
                       "state",
                       s, pc));
    }
    if (shadow_[s] != ShadowWait::Ready) {
        fail(strprintf("stream %u issued (pc %u) but the ABI event log "
                       "says it is waiting",
                       s, pc));
    }
    // Partition honour: a ready slot owner must get its own slot.
    if (slot_owner < kNumStreams && ((ready_mask >> slot_owner) & 1) &&
        s != slot_owner) {
        fail(strprintf("partition violated: slot owned by ready stream "
                       "%u was issued to stream %u (mask 0x%x)",
                       slot_owner, s, ready_mask));
    }
}

void
InvariantChecker::onVector(StreamId s, unsigned level)
{
    const InterruptUnit &iu = m_.interrupts();
    unsigned pending = static_cast<unsigned>(iu.ir(s) & iu.mr(s));
    unsigned running = iu.runningLevel(s);
    // Independent re-derivation of the paper's rule: the vector taken
    // must be the highest unmasked pending level in 7..1 strictly
    // above the running level.
    unsigned expected = 0;
    for (unsigned lvl = kNumIntLevels - 1; lvl >= 1; --lvl) {
        if (pending & (1u << lvl)) {
            if (lvl > running)
                expected = lvl;
            break;
        }
    }
    if (expected == 0) {
        fail(strprintf("stream %u vectored to level %u with no "
                       "eligible vector (pending 0x%02x, running %u)",
                       s, level, pending, running));
    } else if (level != expected) {
        fail(strprintf("stream %u vectored to level %u but the highest "
                       "eligible pending level is %u (pending 0x%02x, "
                       "running %u)",
                       s, level, expected, pending, running));
    }
}

void
InvariantChecker::onEvent(StreamId s, Opcode op, PipeEvent ev)
{
    if (cov_)
        cov_->record(op, ev, activeStreams(),
                     m_.stats().fastForwardedCycles > 0,
                     m_.uopDispatchEnabled());
    if (s >= kNumStreams)
        return;
    switch (ev) {
      case PipeEvent::BusBusy:
      case PipeEvent::WaitStart:
        if (shadow_[s] != ShadowWait::Ready) {
            fail(strprintf("stream %u started a %s wait while already "
                           "waiting",
                           s, pipeEventName(ev)));
        }
        shadow_[s] = ShadowWait::Waiting;
        break;
      case PipeEvent::Wake:
        if (shadow_[s] != ShadowWait::Waiting)
            fail(strprintf("stream %u woken while not waiting", s));
        shadow_[s] = ShadowWait::Ready;
        break;
      default:
        break;
    }
}

void
InvariantChecker::onCycleEnd()
{
    for (StreamId s = 0; s < kNumStreams; ++s) {
        const StackWindow &w = m_.window(s);
        if (w.awp() < w.minAwp() || w.awp() >= w.limit()) {
            fail(strprintf("stream %u AWP %u outside its stack region "
                           "[%u, %u)",
                           s, w.awp(), w.minAwp(), w.limit()));
        }
        bool machine_waiting = m_.isWaiting(s);
        bool shadow_waiting = shadow_[s] == ShadowWait::Waiting;
        if (machine_waiting != shadow_waiting) {
            fail(strprintf("stream %u wait state %s disagrees with the "
                           "ABI event log (%s)",
                           s, machine_waiting ? "waiting" : "ready",
                           shadow_waiting ? "waiting" : "ready"));
            shadow_[s] = machine_waiting ? ShadowWait::Waiting
                                         : ShadowWait::Ready;
        }
    }
}

std::string
InvariantChecker::report() const
{
    if (ok())
        return "";
    std::string out = strprintf("%llu invariant violation(s):\n",
                                static_cast<unsigned long long>(
                                    totalViolations_));
    for (const Violation &v : violations_) {
        out += strprintf("  cycle %llu: %s\n",
                         static_cast<unsigned long long>(v.cycle),
                         v.message.c_str());
    }
    if (totalViolations_ > violations_.size())
        out += "  ...\n";
    return out;
}

} // namespace disc
