/**
 * @file
 * Multi-stream differential engine: pipelined Machine vs per-stream
 * sequential Interp references.
 *
 * The generator (verify/generator.hh) emits workloads whose per-stream
 * final state is interleaving-independent, so each stream of the
 * four-stream pipelined run can be checked against its own
 * single-stream golden model. The comparison covers the window
 * registers, the user flags, the window position, the stream's
 * internal scratch region, and its private external device — i.e.
 * every architected effect the stream's own code can have.
 */

#ifndef DISC_VERIFY_DIFFERENTIAL_HH
#define DISC_VERIFY_DIFFERENTIAL_HH

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "arch/devices.hh"
#include "board/board.hh"
#include "sim/machine.hh"
#include "verify/generator.hh"

namespace disc
{

/**
 * A Machine loaded with a generated workload plus the per-stream
 * devices it needs, with lifetimes managed together. The rig does not
 * start the workload — call start() (or drive the machine by hand, as
 * the checkpoint tests do).
 */
class MachineRig
{
  public:
    /** @param cfg machine configuration (e.g. stepping mode) to use. */
    explicit MachineRig(const MultiStreamProgram &msp,
                        MachineConfig cfg = {});

    Machine &machine() { return machine_; }
    const MultiStreamProgram &workload() const { return msp_; }

    /** Stream @p s's private device (nullptr when devices are off). */
    ExternalMemoryDevice *device(StreamId s);

    /** Kick off stream 0 (which spawns the others from code). */
    void start();

    /** A cycle budget that any healthy run finishes well inside. */
    Cycle cycleBudget() const;

  private:
    MultiStreamProgram msp_;
    Machine machine_;
    /// Per-stream fuzz devices, composed through the board registry
    /// (one construction path with disc-run and disc-serve). The
    /// golden-model references in compareWithReference() stay
    /// hand-wired on purpose: a registry bug then has to be made
    /// twice, in two unrelated code paths, to go unnoticed.
    Board board_;
};

/**
 * Run each stream's sequential reference and compare it against the
 * machine state in @p rig (which must have finished running the
 * workload). Returns one message per mismatch; empty means the
 * differential passed.
 */
std::vector<std::string> compareWithReference(MachineRig &rig);

/** Outcome of a full differential run. */
struct DiffOutcome
{
    /** Machine reached quiescence inside the cycle budget. */
    bool machineIdle = false;

    /** Mismatch/termination problems; empty when the run verified. */
    std::vector<std::string> divergences;

    bool ok() const { return machineIdle && divergences.empty(); }

    /** One-line-per-problem summary ("" when ok). */
    std::string summary() const;
};

/**
 * Generate-free driver: build a rig for @p msp, run the machine to
 * idle (optionally observed by @p observer, e.g. an InvariantChecker)
 * and compare every stream against its reference.
 */
DiffOutcome runDifferential(const MultiStreamProgram &msp,
                            MachineObserver *observer = nullptr,
                            Cycle max_cycles = 0);

} // namespace disc

#endif // DISC_VERIFY_DIFFERENTIAL_HH
