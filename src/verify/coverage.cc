#include "verify/coverage.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace disc
{

namespace
{
constexpr std::size_t kActiveBuckets = kNumStreams + 1;
constexpr std::size_t kSkipBuckets = 2;
constexpr std::size_t kUopBuckets = 2;
constexpr std::size_t kDenseSize =
    static_cast<std::size_t>(kNumOpcodes) * kNumPipeEvents *
    kActiveBuckets * kSkipBuckets * kUopBuckets;
// Dense (op x event x active x skip x uop) block, then one slot per
// superblock bail reason, one per batch peel reason, and one per
// board device type.
constexpr std::size_t kMapSize =
    kDenseSize + kNumSbBails + kNumBatchPeels + kNumBoardDeviceTypes;
} // namespace

CoverageMap::CoverageMap() : hits_(kMapSize, 0) {}

std::size_t
CoverageMap::index(Opcode op, PipeEvent ev, unsigned active,
                   bool skip_taken, bool uop_dispatch)
{
    auto o = static_cast<std::size_t>(op);
    auto e = static_cast<std::size_t>(ev);
    if (o >= kNumOpcodes || e >= kNumPipeEvents ||
        active >= kActiveBuckets)
        panic("coverage point (%zu, %zu, %u) out of range", o, e,
              active);
    return (((o * kNumPipeEvents + e) * kActiveBuckets + active) *
                kSkipBuckets +
            (skip_taken ? 1 : 0)) *
               kUopBuckets +
           (uop_dispatch ? 1 : 0);
}

void
CoverageMap::record(Opcode op, PipeEvent ev, unsigned active,
                    bool skip_taken, bool uop_dispatch)
{
    std::uint32_t &h =
        hits_[index(op, ev, active, skip_taken, uop_dispatch)];
    if (h != std::numeric_limits<std::uint32_t>::max())
        ++h;
}

void
CoverageMap::recordBail(SbBail b)
{
    auto i = static_cast<std::size_t>(b);
    if (i >= kNumSbBails)
        panic("bail reason %zu out of range", i);
    std::uint32_t &h = hits_[kDenseSize + i];
    if (h != std::numeric_limits<std::uint32_t>::max())
        ++h;
}

void
CoverageMap::recordPeel(BatchPeel p)
{
    auto i = static_cast<std::size_t>(p);
    if (i >= kNumBatchPeels)
        panic("peel reason %zu out of range", i);
    std::uint32_t &h = hits_[kDenseSize + kNumSbBails + i];
    if (h != std::numeric_limits<std::uint32_t>::max())
        ++h;
}

void
CoverageMap::recordBoardDevice(std::size_t type)
{
    if (type >= kNumBoardDeviceTypes)
        panic("board device type %zu out of range", type);
    std::uint32_t &h =
        hits_[kDenseSize + kNumSbBails + kNumBatchPeels + type];
    if (h != std::numeric_limits<std::uint32_t>::max())
        ++h;
}

std::size_t
CoverageMap::pointsHit() const
{
    std::size_t n = 0;
    for (std::uint32_t h : hits_)
        n += h != 0;
    return n;
}

std::size_t
CoverageMap::countNew(const CoverageMap &other) const
{
    std::size_t n = 0;
    for (std::size_t i = 0; i < hits_.size(); ++i)
        n += hits_[i] == 0 && other.hits_[i] != 0;
    return n;
}

void
CoverageMap::merge(const CoverageMap &other)
{
    for (std::size_t i = 0; i < hits_.size(); ++i) {
        std::uint64_t sum =
            static_cast<std::uint64_t>(hits_[i]) + other.hits_[i];
        hits_[i] = static_cast<std::uint32_t>(std::min<std::uint64_t>(
            sum, std::numeric_limits<std::uint32_t>::max()));
    }
}

void
CoverageMap::clear()
{
    std::fill(hits_.begin(), hits_.end(), 0);
}

} // namespace disc
