#include "verify/differential.hh"

#include "common/logging.hh"
#include "sim/interp.hh"

namespace disc
{

MachineRig::MachineRig(const MultiStreamProgram &msp, MachineConfig cfg)
    : msp_(msp), machine_(cfg)
{
    if (msp_.opts.useDevices) {
        std::string text;
        for (StreamId s = 0; s < msp_.streams; ++s)
            text += strprintf(
                "device extmem fuzz%u base=0x%04x size=%u latency=%u\n",
                s,
                static_cast<Addr>(kFuzzDeviceBase +
                                  s * kFuzzDeviceStride),
                kFuzzDeviceWords, fuzzDeviceLatency(msp_.opts, s));
        board_ = buildBoard(parseBoardSpec(text, "<fuzz-rig>"));
        board_.attachTo(machine_);
    }
    machine_.load(msp_.program);
}

ExternalMemoryDevice *
MachineRig::device(StreamId s)
{
    if (s >= msp_.streams || !msp_.opts.useDevices)
        return nullptr;
    return &board_.findAs<ExternalMemoryDevice>(strprintf("fuzz%u", s));
}

void
MachineRig::start()
{
    machine_.startStream(0, msp_.entry[0]);
}

Cycle
MachineRig::cycleBudget() const
{
    // Worst case per body op is a handful of cycles even under full
    // bus contention and burst nesting; the constant covers spawn and
    // drain tails with a wide margin.
    return 20000 + static_cast<Cycle>(msp_.opts.length) *
                       msp_.streams * 600;
}

std::vector<std::string>
compareWithReference(MachineRig &rig)
{
    const MultiStreamProgram &msp = rig.workload();
    Machine &m = rig.machine();
    std::vector<std::string> diffs;

    for (StreamId s = 0; s < msp.streams; ++s) {
        Interp ref(stackBaseFor(s), kStackRegionWords, s);
        ExternalMemoryDevice ref_dev(kFuzzDeviceWords, 0);
        if (msp.opts.useDevices) {
            ref.attachDevice(static_cast<Addr>(kFuzzDeviceBase +
                                               s * kFuzzDeviceStride),
                             kFuzzDeviceWords, &ref_dev);
        }
        ref.load(msp.program);
        ref.setPc(msp.entry[s]);
        ref.run(1000000);
        if (!ref.halted()) {
            diffs.push_back(strprintf(
                "stream %u: sequential reference did not halt "
                "(pc stuck near %u)",
                s, ref.pc()));
            continue;
        }

        for (unsigned r = 0; r < kNumWindowRegs; ++r) {
            Word mv = m.readReg(s, r);
            Word iv = ref.readReg(r);
            if (mv != iv) {
                diffs.push_back(strprintf(
                    "stream %u: r%u is 0x%04x, reference says 0x%04x",
                    s, r, mv, iv));
            }
        }

        Word mflags = m.readReg(s, reg::SR) & 0xf;
        Word iflags = ref.readReg(reg::SR) & 0xf;
        if (mflags != iflags) {
            diffs.push_back(strprintf(
                "stream %u: flags are 0x%x, reference says 0x%x", s,
                mflags, iflags));
        }

        // A vector-spawned stream carries the spawn vector's frame
        // push, so its window sits exactly one word above the model's.
        Addr expect_awp = static_cast<Addr>(ref.window().awp() +
                                            (msp.vectored[s] ? 1 : 0));
        if (m.window(s).awp() != expect_awp) {
            diffs.push_back(strprintf(
                "stream %u: AWP is %u, reference says %u", s,
                m.window(s).awp(), expect_awp));
        }

        Addr scratch = static_cast<Addr>(s * kFuzzScratchWords);
        for (Addr a = scratch; a < scratch + kFuzzScratchWords; ++a) {
            Word mv = m.internalMemory().read(a);
            Word iv = ref.internalMemory().read(a);
            if (mv != iv) {
                diffs.push_back(strprintf(
                    "stream %u: imem[0x%03x] is 0x%04x, reference "
                    "says 0x%04x",
                    s, a, mv, iv));
            }
        }

        if (ExternalMemoryDevice *dev = rig.device(s)) {
            for (Addr w = 0; w < kFuzzDeviceWords; ++w) {
                Word mv = dev->peek(w);
                Word iv = ref_dev.peek(w);
                if (mv != iv) {
                    diffs.push_back(strprintf(
                        "stream %u: device[0x%02x] is 0x%04x, "
                        "reference says 0x%04x",
                        s, w, mv, iv));
                }
            }
        }
    }
    return diffs;
}

std::string
DiffOutcome::summary() const
{
    if (ok())
        return "";
    std::string out;
    if (!machineIdle)
        out += "machine did not reach quiescence in budget\n";
    for (const std::string &d : divergences)
        out += d + "\n";
    return out;
}

DiffOutcome
runDifferential(const MultiStreamProgram &msp, MachineObserver *observer,
                Cycle max_cycles)
{
    MachineRig rig(msp);
    if (observer)
        rig.machine().setObserver(observer);
    rig.start();
    rig.machine().run(max_cycles ? max_cycles : rig.cycleBudget());

    DiffOutcome out;
    out.machineIdle = rig.machine().idle();
    out.divergences = compareWithReference(rig);
    rig.machine().setObserver(nullptr);
    return out;
}

} // namespace disc
