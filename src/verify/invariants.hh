/**
 * @file
 * Per-cycle architectural invariant oracle for the DISC1 machine.
 *
 * The checker attaches to a Machine through the MachineObserver hooks
 * and audits, every cycle, the properties the paper asserts of the
 * hardware rather than of any one program:
 *
 *  - the Active Window Pointer of every stream stays inside that
 *    stream's stack region (section 3.5);
 *  - the scheduler never issues from a stream that is waiting on the
 *    ABI or inactive, and the issued stream was in the ready mask;
 *  - static throughput partitions are honoured: whenever the slot's
 *    owning stream is ready, that stream (and no other) gets the
 *    cycle (section 3.4);
 *  - interrupt vectoring always takes the highest unmasked pending
 *    level strictly above the running level — bit 7 beats everything
 *    (section 3.6.3);
 *  - the ABI wait-state protocol transitions legally: a stream goes
 *    Ready -> Waiting only on a bus-busy rejection or an access with
 *    wait states, Waiting -> Ready only on a completion wake, and
 *    never issues while the event log says it waits.
 *
 * Violations are collected (with the cycle number) rather than thrown,
 * so a fuzzer can shrink a failing input; ok() and report() summarise.
 * The checker is independent of program semantics — it can watch any
 * workload, generated or hand-written — and costs nothing when not
 * attached (see sim/observer.hh).
 */

#ifndef DISC_VERIFY_INVARIANTS_HH
#define DISC_VERIFY_INVARIANTS_HH

#include <array>
#include <string>
#include <vector>

#include "sim/machine.hh"
#include "sim/observer.hh"
#include "verify/coverage.hh"

namespace disc
{

/** One invariant violation, timestamped with the machine cycle. */
struct Violation
{
    Cycle cycle = 0;
    std::string message;
};

/** MachineObserver that audits architectural invariants every cycle. */
class InvariantChecker : public MachineObserver
{
  public:
    /** Attachable to @p m only; also call m.setObserver(&checker). */
    explicit InvariantChecker(const Machine &m);

    /**
     * Also record every event into @p cov (with the live-stream count
     * at event time). Pass nullptr to stop recording.
     */
    void setCoverage(CoverageMap *cov) { cov_ = cov; }

    /** True while no invariant has been violated. */
    bool ok() const { return totalViolations_ == 0; }

    /** Number of violations seen (including any beyond the cap). */
    std::uint64_t totalViolations() const { return totalViolations_; }

    /** The first violations (capped; enough for any repro). */
    const std::vector<Violation> &violations() const
    {
        return violations_;
    }

    /** Multi-line human-readable summary ("" when ok). */
    std::string report() const;

    /**
     * Re-derive the shadow wait states from the machine (use after
     * restoreState() or when attaching mid-run) and clear violations.
     */
    void resync();

    // -- MachineObserver --
    void onIssue(StreamId s, StreamId slot_owner, unsigned ready_mask,
                 PAddr pc, const Instruction &inst) override;
    void onVector(StreamId s, unsigned level) override;
    void onEvent(StreamId s, Opcode op, PipeEvent ev) override;
    void onCycleEnd() override;

  private:
    /** Independent record of each stream's ABI protocol position. */
    enum class ShadowWait : std::uint8_t { Ready, Waiting };

    const Machine &m_;
    CoverageMap *cov_ = nullptr;
    std::array<ShadowWait, kNumStreams> shadow_{};
    std::vector<Violation> violations_;
    std::uint64_t totalViolations_ = 0;

    void fail(std::string message);
    unsigned activeStreams() const;
};

} // namespace disc

#endif // DISC_VERIFY_INVARIANTS_HH
