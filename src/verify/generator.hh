/**
 * @file
 * Random multi-stream workload generator for differential testing.
 *
 * generateMultiStream() emits a complete DISC1 program image exercising
 * up to four concurrent streams: interrupt-spawned and FORK-spawned
 * streams, ABI loads/stores to per-stream slow devices, window
 * call/return nests, self-raised interrupt bursts with nested handler
 * entry, and forward branch skips. Programs are constructed so that
 * each stream's final architectural state is a pure function of its
 * own instruction sequence, independent of how the scheduler
 * interleaves the streams:
 *
 *  - streams share no global registers and touch disjoint internal
 *    scratch regions ([s*64, s*64+64)) and disjoint external devices
 *    (0x1000 + s*0x100);
 *  - every fresh window cell exposed by an upward window move is
 *    written before it can be read, so vector-entry frame residue
 *    cannot leak into results;
 *  - control flow is forward-only plus balanced call/ret, so every
 *    stream terminates;
 *  - interrupt-burst handlers (CLRI b; RETI) are architecturally
 *    net-zero, so the sequential golden model — which takes no
 *    vectors — still predicts the final state.
 *
 * That makes the per-stream Interp an exact oracle for the final
 * registers, flags, window position, scratch memory and device
 * contents of the pipelined multi-stream Machine (see
 * verify/differential.hh), while the program still drives the machine
 * through bus contention, wait states, vector nesting and dynamic
 * slot reallocation.
 *
 * Everything is a deterministic function of (seed, options): the
 * fuzzer's shrinker re-generates from reduced options instead of
 * editing instruction bytes, and a repro file is just the pair.
 */

#ifndef DISC_VERIFY_GENERATOR_HH
#define DISC_VERIFY_GENERATOR_HH

#include <array>
#include <cstdint>

#include "common/types.hh"
#include "isa/program.hh"

namespace disc
{

/** Knobs of the multi-stream generator (all deterministic). */
struct GenOptions
{
    /** Concurrent streams to generate (1..kNumStreams). */
    unsigned streams = 4;

    /** Operation budget per stream body. */
    unsigned length = 40;

    /**
     * Spawn streams through SWI-raised vectors (else FORK) and emit
     * self-interrupt bursts whose handlers nest at levels 2..4.
     */
    bool useInterrupts = true;

    /** Emit external LD/ST packets to the per-stream devices. */
    bool useDevices = true;

    /**
     * Base access time of the per-stream devices; stream s's device
     * gets (deviceLatency + s) % 7 wait cycles, so zero-wait-state
     * and slow paths are both exercised.
     */
    unsigned deviceLatency = 3;
};

/** External-bus base address of stream @p s's private device. */
constexpr Addr kFuzzDeviceBase = 0x1000;
/** Address stride between per-stream devices. */
constexpr Addr kFuzzDeviceStride = 0x100;
/** Words in each per-stream device. */
constexpr Addr kFuzzDeviceWords = 64;
/** Internal-memory scratch words per stream, at [s*64, s*64+64). */
constexpr Addr kFuzzScratchWords = 64;

/** Per-stream device access time implied by the options. */
constexpr unsigned
fuzzDeviceLatency(const GenOptions &opts, StreamId s)
{
    return (opts.deviceLatency + s) % 7;
}

/** A generated workload plus the metadata needed to run and check it. */
struct MultiStreamProgram
{
    Program program;
    GenOptions opts;
    std::uint64_t seed = 0;

    /** Streams actually in use (== opts.streams clamped to 1..4). */
    unsigned streams = 1;

    /** Entry address of each stream in use. */
    std::array<PAddr, kNumStreams> entry{};

    /**
     * True when the stream is spawned through an interrupt vector
     * (its window is one frame deeper than the golden model's).
     */
    std::array<bool, kNumStreams> vectored{};
};

/** Generate a workload; pure function of (seed, opts). */
MultiStreamProgram generateMultiStream(std::uint64_t seed,
                                       const GenOptions &opts);

} // namespace disc

#endif // DISC_VERIFY_GENERATOR_HH
