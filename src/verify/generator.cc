#include "verify/generator.hh"

#include <algorithm>

#include "arch/interrupts.hh"
#include "arch/stack_window.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "isa/instruction.hh"

namespace disc
{

namespace
{

/** Growable program image with emit/patch primitives. */
class Emitter
{
  public:
    Emitter() : code_(kVectorTableEnd, encode(makeOp(Opcode::NOP))) {}

    PAddr here() const { return static_cast<PAddr>(code_.size()); }

    PAddr emit(const Instruction &inst)
    {
        code_.push_back(encode(inst));
        return static_cast<PAddr>(code_.size() - 1);
    }

    void patch(PAddr addr, const Instruction &inst)
    {
        code_[addr] = encode(inst);
    }

    std::vector<InstWord> take() { return std::move(code_); }

  private:
    std::vector<InstWord> code_;
};

/** Per-stream body generation state. */
struct BodyGen
{
    Emitter &em;
    Rng &rng;
    StreamId s;
    const GenOptions &opts;
    unsigned depth = 0; ///< net upward window motion from the entry

    /**
     * Depths (net AWP motion from the body entry) holding a live CALL
     * return address. Window frames overlap, so a write to register k
     * at depth d lands on the cell at depth d-k — possibly an
     * *ancestor* callee's return slot. Destinations must avoid every
     * live slot, or RET sends both models into the NOP wilderness
     * beyond the image.
     */
    std::vector<unsigned> retDepths = {};

    // Keep well clear of the 120-word region headroom: vector frames
    // (spawn + three nested burst levels) and clamping margins ride on
    // top of whatever the body allocates.
    static constexpr unsigned kMaxDepth = 40;

    unsigned scratchReg() { return static_cast<unsigned>(rng.below(6)); }

    bool aliasesRetAddr(unsigned r) const
    {
        for (unsigned a : retDepths)
            if (depth >= a && depth - a == r)
                return true;
        return false;
    }

    /** A random register safe to *write* (reads may use any). */
    unsigned destReg()
    {
        unsigned r;
        do {
            r = static_cast<unsigned>(rng.below(6));
        } while (aliasesRetAddr(r));
        return r;
    }

    void emitRandomAlu()
    {
        switch (rng.below(5)) {
          case 0: {
            static const Opcode ops[] = {
                Opcode::ADD, Opcode::ADC, Opcode::SUB, Opcode::SBC,
                Opcode::AND, Opcode::OR,  Opcode::XOR, Opcode::SHL,
                Opcode::SHR, Opcode::ASR, Opcode::MUL};
            em.emit(makeR3(ops[rng.below(11)], destReg(),
                           scratchReg(), scratchReg()));
            break;
          }
          case 1: {
            static const Opcode ops[] = {Opcode::ADDI, Opcode::SUBI,
                                         Opcode::ANDI, Opcode::ORI,
                                         Opcode::XORI, Opcode::CMPI};
            em.emit(makeRI(ops[rng.below(6)], destReg(),
                           scratchReg(),
                           static_cast<int>(rng.below(128))));
            break;
          }
          case 2: {
            static const Opcode ops[] = {Opcode::MOV, Opcode::NOT,
                                         Opcode::NEG};
            em.emit(makeR2(ops[rng.below(3)], destReg(),
                           scratchReg()));
            break;
          }
          case 3:
            em.emit(makeLdi(destReg(),
                            static_cast<int>(rng.below(4096)) - 2048));
            break;
          default: {
            Instruction i;
            i.op = rng.chance(0.5) ? Opcode::CMP : Opcode::TST;
            i.ra = scratchReg();
            i.rb = scratchReg();
            em.emit(i);
            break;
          }
        }
    }

    /** LDM/STM/LDMD/STMD confined to this stream's scratch region. */
    void emitInternalMem()
    {
        Addr base = static_cast<Addr>(s * kFuzzScratchWords);
        int off = static_cast<int>(rng.below(kFuzzScratchWords));
        if (rng.chance(0.5)) {
            Instruction i;
            i.op = rng.chance(0.5) ? Opcode::LDMD : Opcode::STMD;
            i.rd = destReg();
            i.imm = static_cast<int>(base) + off;
            em.emit(i);
        } else {
            em.emit(makeLdi(6, static_cast<int>(base)));
            Opcode op = rng.chance(0.5) ? Opcode::LDM : Opcode::STM;
            em.emit(makeRI(op, destReg(), 6, off));
        }
    }

    /** External LD/ST to this stream's private device via the ABI. */
    void emitExternalMem()
    {
        // r7 = kFuzzDeviceBase + s * kFuzzDeviceStride (both multiples
        // of 0x100, so LDI 0 + LDIH of the high byte composes it).
        em.emit(makeLdi(7, 0));
        em.emit(makeLdih(
            7, static_cast<unsigned>(
                   (kFuzzDeviceBase + s * kFuzzDeviceStride) >> 8)));
        Opcode op = rng.chance(0.5) ? Opcode::LD : Opcode::ST;
        em.emit(makeRI(op, destReg(), 7,
                       static_cast<int>(rng.below(kFuzzDeviceWords))));
    }

    /**
     * Raise 2-3 of this stream's own interrupt bits back to back so
     * several levels are pending at once when the vector decision is
     * made — the scenario where priority ordering matters. Bits 2..4
     * only: they sit above both spawn levels (0 and 1) and below the
     * trap levels.
     */
    void emitBurst()
    {
        unsigned mask = 0;
        unsigned count = 2 + static_cast<unsigned>(rng.below(2));
        while (__builtin_popcount(mask) <
               static_cast<int>(count))
            mask |= 1u << (2 + rng.below(3));
        for (unsigned bit = 2; bit <= 4; ++bit) {
            if (mask & (1u << bit))
                em.emit(makeSwi(s, bit));
        }
    }

    /** CMPI; Bcc +2; one ALU op the branch may or may not skip. */
    void emitBranchSkip()
    {
        em.emit(makeRI(Opcode::CMPI, scratchReg(), scratchReg(),
                       static_cast<int>(rng.below(64))));
        em.emit(makeBranch(static_cast<Cond>(rng.below(8)), 2));
        emitRandomAlu();
    }

    /** WINC immediately defined: the fresh R0 is written before use. */
    void emitWinc()
    {
        if (depth + 1 >= kMaxDepth)
            return;
        ++depth;
        em.emit(makeOp(Opcode::WINC));
        em.emit(makeLdi(0, static_cast<int>(rng.below(256))));
    }

    void emitWdec()
    {
        if (depth == 0)
            return;
        --depth;
        em.emit(makeOp(Opcode::WDEC));
    }

    /**
     * A balanced call/return nest:
     *
     *   A:   call A+2
     *   A+1: jmp after        ; the return lands here
     *   A+2: ...callee: ALU ops and WINC allocations...
     *        ret n            ; unwind the n locals
     *   after:
     */
    void emitCallNest(unsigned nest)
    {
        if (depth + 4 >= kMaxDepth)
            return;
        ++depth; // the CALL frame push
        PAddr call_at = em.emit(makeJump(Opcode::CALL, 0));
        PAddr jmp_at = em.emit(makeJump(Opcode::JMP, 0));
        em.patch(call_at,
                 makeJump(Opcode::CALL,
                          static_cast<PAddr>(jmp_at + 1)));

        retDepths.push_back(depth); // the pushed return address lives
                                    // at the post-CALL depth
        unsigned locals = 0;
        unsigned ops = 2 + static_cast<unsigned>(rng.below(5));
        for (unsigned i = 0; i < ops; ++i) {
            unsigned kind = static_cast<unsigned>(rng.below(8));
            if (kind == 0 && locals < 2 && depth + 1 < kMaxDepth) {
                ++locals;
                ++depth;
                em.emit(makeOp(Opcode::WINC));
                em.emit(makeLdi(0, static_cast<int>(rng.below(256))));
            } else if (kind == 1 && nest > 0) {
                emitCallNest(nest - 1);
            } else {
                emitRandomAlu();
            }
        }
        em.emit(makeRet(locals));
        depth -= locals + 1;
        retDepths.pop_back();
        em.patch(jmp_at, makeJump(Opcode::JMP, em.here()));
    }

    /** Emit a whole stream body (prologue, random ops, epilogue). */
    void emitBody(bool is_vectored)
    {
        // Deterministic starting registers: every scratch register is
        // written before the random ops can read it.
        for (unsigned r = 0; r < 6; ++r)
            em.emit(makeLdi(r, static_cast<int>(rng.below(4096)) -
                                   2048));

        for (unsigned i = 0; i < opts.length; ++i) {
            switch (rng.below(10)) {
              case 0:
                emitInternalMem();
                break;
              case 1:
                if (opts.useDevices)
                    emitExternalMem();
                else
                    emitInternalMem();
                break;
              case 2:
                if (opts.useInterrupts)
                    emitBurst();
                else
                    emitRandomAlu();
                break;
              case 3:
                emitBranchSkip();
                break;
              case 4:
                emitCallNest(1);
                break;
              case 5:
                emitWinc();
                break;
              case 6:
                emitWdec();
                break;
              default:
                emitRandomAlu();
                break;
            }
        }

        if (opts.useInterrupts) {
            // Guarantee at least one multi-level burst per stream so
            // every seed can expose a priority-ordering bug.
            emitBurst();
            // Drain pad: the epilogue must not already be in flight
            // when the burst's bits post, or the last handler's CLRI
            // becomes the deactivation point and its vector frame is
            // never popped (a one-word window skew the golden model
            // cannot predict).
            for (unsigned i = 0; i < kDisc1PipeDepth; ++i)
                em.emit(makeOp(Opcode::NOP));
        }

        if (is_vectored) {
            // Clearing the spawn bit deactivates the stream on the
            // machine; the sequential model falls through to HALT.
            em.emit(makeClri(1));
        }
        em.emit(makeOp(Opcode::HALT));
    }
};

} // namespace

MultiStreamProgram
generateMultiStream(std::uint64_t seed, const GenOptions &opts_in)
{
    MultiStreamProgram out;
    out.opts = opts_in;
    out.opts.streams = std::clamp(opts_in.streams, 1u, kNumStreams);
    // Bound the image so FORK's 12-bit entry field always reaches.
    out.opts.length = std::clamp(opts_in.length, 1u, 220u);
    out.seed = seed;
    out.streams = out.opts.streams;

    Rng rng(seed ^ 0xd15cf0cc5eedULL);
    Emitter em;

    // Streams 1..N-1 first, so stream 0 knows every entry address.
    for (StreamId s = 1; s < out.streams; ++s) {
        out.vectored[s] = out.opts.useInterrupts && rng.chance(0.6);
        out.entry[s] = em.here();
        BodyGen{em, rng, s, out.opts}.emitBody(out.vectored[s]);
    }

    out.entry[0] = em.here();
    for (StreamId s = 1; s < out.streams; ++s) {
        if (out.vectored[s])
            em.emit(makeSwi(s, 1));
        else
            em.emit(makeFork(s, out.entry[s]));
    }
    BodyGen{em, rng, 0, out.opts}.emitBody(false);

    if (out.opts.useInterrupts) {
        // One shared handler per burst level; CLRI acts on the
        // executing stream, so all streams can vector to the same one.
        for (unsigned bit = 2; bit <= 4; ++bit) {
            PAddr handler = em.emit(makeClri(bit));
            em.emit(makeOp(Opcode::RETI));
            for (StreamId s = 0; s < out.streams; ++s) {
                em.patch(vectorAddress(s, bit),
                         makeJump(Opcode::JMP, handler));
            }
        }
        for (StreamId s = 1; s < out.streams; ++s) {
            if (out.vectored[s]) {
                em.patch(vectorAddress(s, 1),
                         makeJump(Opcode::JMP, out.entry[s]));
            }
        }
    }

    out.program.code = em.take();
    for (StreamId s = 0; s < out.streams; ++s) {
        out.program.symbols["entry" + std::to_string(s)] =
            out.entry[s];
    }
    return out;
}

} // namespace disc
