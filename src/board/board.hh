/**
 * @file
 * Board descriptions: a text format composing a device graph onto the
 * ABI bus (ROADMAP item 4, after the qemu board-file pattern).
 *
 * A board spec is a line-oriented text file:
 *
 *     # comment (';' also starts a comment)
 *     device <type> <name> base=0xNNNN size=N [key=value ...]
 *     start <stream> <label>
 *
 * `device` lines declare peripherals; declaration order is bus attach
 * order (and therefore checkpoint order), which keeps every board
 * composition deterministic. `start` lines name program labels to
 * launch on additional streams once the program is loaded — the board
 * analogue of `disc-run --stream`.
 *
 * parseBoardSpec() performs structural validation (unknown type,
 * duplicate name, zero size, address wrap, range overlap, bad stream)
 * and the factories validate their own parameters, so a spec that
 * builds is a spec that runs. BoardSpec::canonicalText() renders the
 * parsed spec back to a normalized form; Machine embeds that string
 * in checkpoint v3 headers so park/restore and cross-shard migration
 * can verify the receiving side composed the same board.
 */

#ifndef DISC_BOARD_BOARD_HH
#define DISC_BOARD_BOARD_HH

#include <memory>
#include <string>
#include <vector>

#include "board/registry.hh"
#include "common/logging.hh"

namespace disc
{

class Machine;
class Interp;
class Program;

/** A `start <stream> <label>` line: launch @p label on @p stream. */
struct BoardStreamStart
{
    unsigned stream = 0;
    std::string label;
};

/** A parsed board description. */
struct BoardSpec
{
    std::vector<BoardDeviceSpec> devices;
    std::vector<BoardStreamStart> starts;

    /**
     * Normalized rendering: one `device` line per declaration in
     * order, parameters sorted by key, then `start` lines. Two specs
     * that differ only in comments/whitespace render identically;
     * this string is what checkpoint v3 embeds.
     */
    std::string canonicalText() const;
};

/**
 * Parse a board spec from text. @p origin names the source (file
 * name) for error messages. Structural errors are fatal().
 */
BoardSpec parseBoardSpec(const std::string &text,
                         const std::string &origin = "<board>");

/** Parse a board spec from a file; fatal() when unreadable. */
BoardSpec parseBoardFile(const std::string &path);

/**
 * A built board: the devices constructed from a BoardSpec, owned and
 * ordered, ready to attach to a timing machine or a golden-model
 * interpreter. Movable so rigs can hold one by value.
 */
class Board
{
  public:
    Board() = default;
    Board(Board &&) = default;
    Board &operator=(Board &&) = default;

    /** The spec this board was built from. */
    const BoardSpec &spec() const { return spec_; }

    std::size_t numDevices() const { return devices_.size(); }

    /** Device by declaration index. */
    Device &device(std::size_t idx) const { return *devices_[idx]; }

    /** Device by instance name, or nullptr. */
    Device *find(const std::string &name) const;

    /** Device by name, downcast to its concrete type; fatal() when
     *  absent. The caller asserts the type via the board spec. */
    template <typename T> T &findAs(const std::string &name) const
    {
        Device *dev = find(name);
        if (dev == nullptr)
            fatal("board: no device named '%s'", name.c_str());
        return static_cast<T &>(*dev);
    }

    /**
     * Attach every device to @p m's bus in declaration order and
     * record the canonical spec text in the machine so checkpoints
     * carry the board identity.
     */
    void attachTo(Machine &m) const;

    /** Attach every device to a golden-model interpreter. */
    void attachTo(Interp &interp) const;

    /**
     * Launch the spec's `start` lines on @p m. Labels resolve
     * against @p prog; an undefined label is fatal().
     */
    void startStreams(Machine &m, const Program &prog) const;

  private:
    friend Board buildBoard(const BoardSpec &, const DeviceRegistry &);

    BoardSpec spec_;
    std::vector<std::unique_ptr<Device>> devices_;
};

/**
 * Construct every device of @p spec via @p registry in declaration
 * order. Factories see the partially built board, so cross-device
 * parameters (dma target=) resolve against earlier declarations.
 */
Board buildBoard(const BoardSpec &spec,
                 const DeviceRegistry &registry = DeviceRegistry::builtin());

/**
 * The board line equivalent to a `--extmem base,size,latency` CLI
 * flag: `device extmem extmem_cli<index> ...`. disc-run and disc-serve
 * both append these to the user's board text, so the legacy flags are
 * sugar over one construction path and the canonical spec — and hence
 * every checkpoint digest — agrees between offline and served runs.
 */
std::string extmemSugarLine(unsigned index, Addr base, Addr size,
                            unsigned latency);

} // namespace disc

#endif // DISC_BOARD_BOARD_HH
