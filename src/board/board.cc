#include "board/board.hh"

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "common/logging.hh"
#include "isa/program.hh"
#include "sim/interp.hh"
#include "sim/machine.hh"

namespace disc
{

namespace
{

/** Split a line into whitespace-separated tokens, dropping comments. */
std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> tokens;
    std::string cur;
    for (char c : line) {
        if (c == '#' || c == ';')
            break;
        if (c == ' ' || c == '\t' || c == '\r') {
            if (!cur.empty())
                tokens.push_back(std::move(cur));
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        tokens.push_back(std::move(cur));
    return tokens;
}

unsigned
parseNum(const std::string &origin, int lineno, const std::string &what,
         const std::string &text)
{
    char *end = nullptr;
    unsigned long v =
        text.empty() ? 0 : std::strtoul(text.c_str(), &end, 0);
    if (text.empty() || end == nullptr || *end != '\0')
        fatal("%s:%d: bad %s '%s'", origin.c_str(), lineno, what.c_str(),
              text.c_str());
    return static_cast<unsigned>(v);
}

} // namespace

std::string
BoardSpec::canonicalText() const
{
    std::ostringstream out;
    char buf[32];
    for (const auto &d : devices) {
        std::snprintf(buf, sizeof buf, "0x%04x", d.base);
        out << "device " << d.type << ' ' << d.name << " base=" << buf
            << " size=" << d.size;
        for (const auto &kv : d.params) // map: sorted by key
            out << ' ' << kv.first << '=' << kv.second;
        out << '\n';
    }
    for (const auto &s : starts)
        out << "start " << s.stream << ' ' << s.label << '\n';
    return out.str();
}

BoardSpec
parseBoardSpec(const std::string &text, const std::string &origin)
{
    const DeviceRegistry &registry = DeviceRegistry::builtin();
    BoardSpec spec;
    std::set<std::string> names;
    std::istringstream in(text);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        std::vector<std::string> tokens = tokenize(line);
        if (tokens.empty())
            continue;
        if (tokens[0] == "device") {
            if (tokens.size() < 3)
                fatal("%s:%d: device line needs a type and a name",
                      origin.c_str(), lineno);
            BoardDeviceSpec d;
            d.type = tokens[1];
            d.name = tokens[2];
            if (!registry.has(d.type))
                fatal("%s:%d: unknown device type '%s'", origin.c_str(),
                      lineno, d.type.c_str());
            if (!names.insert(d.name).second)
                fatal("%s:%d: duplicate device name '%s'", origin.c_str(),
                      lineno, d.name.c_str());
            bool haveBase = false, haveSize = false;
            for (std::size_t i = 3; i < tokens.size(); ++i) {
                std::size_t eq = tokens[i].find('=');
                if (eq == std::string::npos || eq == 0)
                    fatal("%s:%d: '%s' is not key=value", origin.c_str(),
                          lineno, tokens[i].c_str());
                std::string key = tokens[i].substr(0, eq);
                std::string value = tokens[i].substr(eq + 1);
                if (key == "base") {
                    d.base = static_cast<Addr>(
                        parseNum(origin, lineno, "base", value));
                    haveBase = true;
                } else if (key == "size") {
                    d.size = static_cast<Addr>(
                        parseNum(origin, lineno, "size", value));
                    haveSize = true;
                } else if (!d.params.emplace(key, value).second) {
                    fatal("%s:%d: duplicate parameter '%s'",
                          origin.c_str(), lineno, key.c_str());
                }
            }
            if (!haveBase || !haveSize)
                fatal("%s:%d: device '%s' needs base= and size=",
                      origin.c_str(), lineno, d.name.c_str());
            if (d.size == 0)
                fatal("%s:%d: device '%s' has zero size", origin.c_str(),
                      lineno, d.name.c_str());
            if (static_cast<std::uint32_t>(d.base) + d.size > 0x10000)
                fatal("%s:%d: device '%s' range [0x%04x, +%u) leaves the "
                      "16-bit address space",
                      origin.c_str(), lineno, d.name.c_str(), d.base,
                      d.size);
            for (const auto &prev : spec.devices) {
                bool overlap = d.base < prev.base + prev.size &&
                               prev.base < d.base + d.size;
                if (overlap)
                    fatal("%s:%d: device '%s' overlaps '%s'",
                          origin.c_str(), lineno, d.name.c_str(),
                          prev.name.c_str());
            }
            spec.devices.push_back(std::move(d));
        } else if (tokens[0] == "start") {
            if (tokens.size() != 3)
                fatal("%s:%d: start line is 'start <stream> <label>'",
                      origin.c_str(), lineno);
            BoardStreamStart s;
            s.stream = parseNum(origin, lineno, "stream", tokens[1]);
            if (s.stream >= kNumStreams)
                fatal("%s:%d: start stream %u out of range (max %u)",
                      origin.c_str(), lineno, s.stream, kNumStreams - 1);
            s.label = tokens[2];
            spec.starts.push_back(std::move(s));
        } else {
            fatal("%s:%d: unknown directive '%s'", origin.c_str(), lineno,
                  tokens[0].c_str());
        }
    }
    return spec;
}

BoardSpec
parseBoardFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open board file '%s'", path.c_str());
    std::ostringstream text;
    text << in.rdbuf();
    return parseBoardSpec(text.str(), path);
}

Device *
Board::find(const std::string &name) const
{
    // Bounded by devices_, not the spec: during buildBoard() only the
    // devices declared so far exist, which is exactly the set a
    // cross-device parameter may legally reference.
    for (std::size_t i = 0; i < devices_.size(); ++i)
        if (spec_.devices[i].name == name)
            return devices_[i].get();
    return nullptr;
}

void
Board::attachTo(Machine &m) const
{
    for (std::size_t i = 0; i < devices_.size(); ++i)
        m.attachDevice(spec_.devices[i].base, spec_.devices[i].size,
                       devices_[i].get());
    m.setBoardSpec(spec_.canonicalText());
}

void
Board::attachTo(Interp &interp) const
{
    for (std::size_t i = 0; i < devices_.size(); ++i)
        interp.attachDevice(spec_.devices[i].base, spec_.devices[i].size,
                            devices_[i].get());
}

void
Board::startStreams(Machine &m, const Program &prog) const
{
    for (const auto &s : spec_.starts)
        m.startStream(static_cast<StreamId>(s.stream),
                      prog.symbol(s.label));
}

std::string
extmemSugarLine(unsigned index, Addr base, Addr size, unsigned latency)
{
    char buf[96];
    std::snprintf(buf, sizeof buf,
                  "device extmem extmem_cli%u base=0x%04x size=%u "
                  "latency=%u\n",
                  index, base, size, latency);
    return buf;
}

Board
buildBoard(const BoardSpec &spec, const DeviceRegistry &registry)
{
    Board board;
    board.spec_ = spec;
    for (const auto &d : spec.devices)
        board.devices_.push_back(registry.make(d, board));
    return board;
}

} // namespace disc
