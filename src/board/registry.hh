/**
 * @file
 * The device registry: named factories from key=value parameter maps
 * to bus peripherals (the qemu board/device pattern, ROADMAP item 4).
 *
 * Every device type the board subsystem can compose is registered
 * here under its spec-file name. A factory receives the parsed
 * BoardDeviceSpec (type, name, base, size, remaining parameters) plus
 * the board built so far, so cross-device wiring ("dma ... target=ram")
 * resolves against devices declared earlier in the file — declaration
 * order is attach order is wiring order, all deterministic.
 *
 * Factories validate exhaustively: a missing required parameter, a
 * malformed value, an out-of-range IRQ line or an unknown key is a
 * fatal() with the device's name in the message. The builtin registry
 * covers all nine device types (arch/devices.hh); tests may build
 * private registries with extra types.
 */

#ifndef DISC_BOARD_REGISTRY_HH
#define DISC_BOARD_REGISTRY_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "arch/bus.hh"
#include "common/types.hh"

namespace disc
{

class Board;

/** One parsed `device` line of a board spec. */
struct BoardDeviceSpec
{
    std::string type; ///< registry factory name
    std::string name; ///< unique instance name
    Addr base = 0;    ///< first bus address
    Addr size = 0;    ///< mapped words
    /// Remaining key=value parameters (base/size excluded). Sorted by
    /// key, which makes the canonical rendering deterministic.
    std::map<std::string, std::string> params;
};

/**
 * Number of device types in the builtin registry. The coverage map
 * (verify/coverage.hh) sizes its board-device point family from this;
 * registerBuiltins() checks the table agrees.
 */
constexpr std::size_t kNumBoardDeviceTypes = 9;

/** Named device factories. */
class DeviceRegistry
{
  public:
    /**
     * A factory builds a device from its spec line. @p board exposes
     * the devices declared earlier for cross-device references.
     */
    using Factory = std::function<std::unique_ptr<Device>(
        const BoardDeviceSpec &, const Board &)>;

    /** Register @p type; fatal() when the name is taken. */
    void add(const std::string &type, Factory factory);

    /** True when @p type has a factory. */
    bool has(const std::string &type) const;

    /** Construct a device; fatal() on unknown type or bad params. */
    std::unique_ptr<Device> make(const BoardDeviceSpec &spec,
                                 const Board &board) const;

    /** Registered type names, sorted. */
    std::vector<std::string> types() const;

    /**
     * Stable index of @p type among the sorted registered names (the
     * coverage map's board-device point id). fatal() when unknown.
     */
    std::size_t typeIndex(const std::string &type) const;

    /** Registered type count. */
    std::size_t size() const { return factories_.size(); }

    /** The process-wide registry holding all nine builtin types. */
    static const DeviceRegistry &builtin();

  private:
    std::map<std::string, Factory> factories_;
};

} // namespace disc

#endif // DISC_BOARD_REGISTRY_HH
