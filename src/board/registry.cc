#include "board/registry.hh"

#include <algorithm>
#include <cstdlib>
#include <set>

#include "arch/devices.hh"
#include "board/board.hh"
#include "common/logging.hh"

namespace disc
{

namespace
{

/**
 * Typed accessors over a device line's key=value map with consumed-key
 * tracking, so a factory can reject misspelled parameters instead of
 * silently ignoring them.
 */
class Params
{
  public:
    explicit Params(const BoardDeviceSpec &spec) : spec_(spec) {}

    bool has(const std::string &key) const
    {
        return spec_.params.count(key) != 0;
    }

    /** Raw value; fatal() when absent. */
    std::string str(const std::string &key)
    {
        auto it = spec_.params.find(key);
        if (it == spec_.params.end())
            fatal("board device '%s': missing required parameter '%s'",
                  spec_.name.c_str(), key.c_str());
        used_.insert(key);
        return it->second;
    }

    std::string str(const std::string &key, const std::string &dflt)
    {
        return has(key) ? str(key) : dflt;
    }

    /** Unsigned integer (decimal or 0x hex); fatal() on junk. */
    unsigned num(const std::string &key)
    {
        return parseNum(key, str(key));
    }

    unsigned num(const std::string &key, unsigned dflt)
    {
        return has(key) ? num(key) : dflt;
    }

    /** Comma-separated word list, e.g. pattern=1,0,3. */
    std::vector<Word> words(const std::string &key)
    {
        std::string value = str(key);
        std::vector<Word> out;
        std::size_t pos = 0;
        while (pos <= value.size()) {
            std::size_t comma = value.find(',', pos);
            if (comma == std::string::npos)
                comma = value.size();
            out.push_back(static_cast<Word>(
                parseNum(key, value.substr(pos, comma - pos))));
            pos = comma + 1;
        }
        return out;
    }

    /**
     * An interrupt line "stream:bit"; validated against the machine's
     * stream count and the 8-bit interrupt register.
     */
    IntRequest irq(const std::string &key)
    {
        std::string value = str(key);
        std::size_t colon = value.find(':');
        if (colon == std::string::npos)
            fatal("board device '%s': %s='%s' is not <stream>:<bit>",
                  spec_.name.c_str(), key.c_str(), value.c_str());
        unsigned stream = parseNum(key, value.substr(0, colon));
        unsigned bit = parseNum(key, value.substr(colon + 1));
        if (stream >= kNumStreams)
            fatal("board device '%s': %s stream %u out of range (max %u)",
                  spec_.name.c_str(), key.c_str(), stream, kNumStreams - 1);
        if (bit >= kNumIntLevels)
            fatal("board device '%s': %s bit %u out of range (max %u)",
                  spec_.name.c_str(), key.c_str(), bit, kNumIntLevels - 1);
        return {static_cast<StreamId>(stream), bit};
    }

    /** Reject any key no accessor consumed. */
    void finish()
    {
        for (const auto &kv : spec_.params)
            if (used_.count(kv.first) == 0)
                fatal("board device '%s' (type %s): unknown parameter '%s'",
                      spec_.name.c_str(), spec_.type.c_str(),
                      kv.first.c_str());
    }

  private:
    unsigned parseNum(const std::string &key, const std::string &text)
    {
        if (text.empty())
            fatal("board device '%s': empty value for '%s'",
                  spec_.name.c_str(), key.c_str());
        char *end = nullptr;
        unsigned long v = std::strtoul(text.c_str(), &end, 0);
        if (end == nullptr || *end != '\0')
            fatal("board device '%s': bad number '%s' for '%s'",
                  spec_.name.c_str(), text.c_str(), key.c_str());
        return static_cast<unsigned>(v);
    }

    const BoardDeviceSpec &spec_;
    std::set<std::string> used_;
};

std::unique_ptr<Device>
makeExtmem(const BoardDeviceSpec &spec, const Board &)
{
    Params p(spec);
    unsigned latency = p.num("latency", 0);
    p.finish();
    return std::make_unique<ExternalMemoryDevice>(spec.size, latency);
}

std::unique_ptr<Device>
makeSensor(const BoardDeviceSpec &spec, const Board &)
{
    Params p(spec);
    auto dev = std::make_unique<SensorDevice>(p.num("period"),
                                              p.num("latency", 0));
    if (p.has("irq")) {
        IntRequest req = p.irq("irq");
        dev->setInterrupt(req.stream, req.bit);
    }
    p.finish();
    return dev;
}

std::unique_ptr<Device>
makeActuator(const BoardDeviceSpec &spec, const Board &)
{
    Params p(spec);
    unsigned latency = p.num("latency", 0);
    p.finish();
    return std::make_unique<ActuatorDevice>(latency);
}

std::unique_ptr<Device>
makeTimer(const BoardDeviceSpec &spec, const Board &)
{
    Params p(spec);
    unsigned period = p.num("period");
    IntRequest req = p.irq("irq");
    p.finish();
    return std::make_unique<TimerDevice>(period, req.stream, req.bit);
}

std::unique_ptr<Device>
makeUart(const BoardDeviceSpec &spec, const Board &)
{
    Params p(spec);
    auto dev = std::make_unique<UartDevice>(p.num("period"),
                                            p.num("latency", 0));
    if (p.has("rx"))
        dev->scriptRx(p.words("rx"));
    if (p.has("irq")) {
        IntRequest req = p.irq("irq");
        dev->setRxInterrupt(req.stream, req.bit);
    }
    p.finish();
    return dev;
}

std::unique_ptr<Device>
makeDma(const BoardDeviceSpec &spec, const Board &board)
{
    Params p(spec);
    std::string target = p.str("target");
    Device *dev = board.find(target);
    if (dev == nullptr)
        fatal("board device '%s': dma target '%s' is not declared "
              "earlier in the board",
              spec.name.c_str(), target.c_str());
    auto *mem = dynamic_cast<ExternalMemoryDevice *>(dev);
    if (mem == nullptr)
        fatal("board device '%s': dma target '%s' is a %s, not an extmem",
              spec.name.c_str(), target.c_str(), dev->name().c_str());
    auto dma = std::make_unique<DmaDevice>(*mem, p.num("cpw", 1));
    if (p.has("irq")) {
        IntRequest req = p.irq("irq");
        dma->setCompletionInterrupt(req.stream, req.bit);
    }
    p.finish();
    return dma;
}

std::unique_ptr<Device>
makeWatchdog(const BoardDeviceSpec &spec, const Board &)
{
    Params p(spec);
    auto dev = std::make_unique<WatchdogDevice>(
        p.num("timeout"), p.num("grace"), p.num("latency", 0));
    if (p.has("irq")) {
        IntRequest req = p.irq("irq");
        dev->setBiteInterrupt(req.stream, req.bit);
    }
    if (p.has("reset")) {
        IntRequest req = p.irq("reset");
        dev->setResetInterrupt(req.stream, req.bit);
    }
    p.finish();
    return dev;
}

GpioDevice::Edge
parseEdge(const BoardDeviceSpec &spec, const std::string &text)
{
    if (text == "rise")
        return GpioDevice::Edge::Rise;
    if (text == "fall")
        return GpioDevice::Edge::Fall;
    if (text == "any")
        return GpioDevice::Edge::Any;
    fatal("board device '%s': edge='%s' is not rise|fall|any",
          spec.name.c_str(), text.c_str());
}

std::unique_ptr<Device>
makeGpio(const BoardDeviceSpec &spec, const Board &)
{
    Params p(spec);
    unsigned period = p.num("period");
    std::vector<Word> pattern = p.words("pattern");
    GpioDevice::Edge edge = parseEdge(spec, p.str("edge", "any"));
    unsigned latency = p.num("latency", 0);
    auto dev =
        std::make_unique<GpioDevice>(period, std::move(pattern), edge,
                                     latency);
    if (p.has("irq")) {
        IntRequest req = p.irq("irq");
        dev->setEdgeInterrupt(req.stream, req.bit);
    }
    p.finish();
    return dev;
}

std::unique_ptr<Device>
makeMailbox(const BoardDeviceSpec &spec, const Board &)
{
    Params p(spec);
    auto dev = std::make_unique<MailboxDevice>(
        p.num("depth"), p.num("delay", 1), p.num("latency", 0));
    if (p.has("irq")) {
        IntRequest req = p.irq("irq");
        dev->setDeliveryInterrupt(req.stream, req.bit);
    }
    p.finish();
    return dev;
}

} // namespace

void
DeviceRegistry::add(const std::string &type, Factory factory)
{
    if (factories_.count(type) != 0)
        fatal("device registry: type '%s' already registered",
              type.c_str());
    factories_[type] = std::move(factory);
}

bool
DeviceRegistry::has(const std::string &type) const
{
    return factories_.count(type) != 0;
}

std::unique_ptr<Device>
DeviceRegistry::make(const BoardDeviceSpec &spec, const Board &board) const
{
    auto it = factories_.find(spec.type);
    if (it == factories_.end())
        fatal("board device '%s': unknown device type '%s'",
              spec.name.c_str(), spec.type.c_str());
    return it->second(spec, board);
}

std::vector<std::string>
DeviceRegistry::types() const
{
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto &kv : factories_)
        out.push_back(kv.first);
    return out; // std::map iterates sorted
}

std::size_t
DeviceRegistry::typeIndex(const std::string &type) const
{
    std::size_t idx = 0;
    for (const auto &kv : factories_) {
        if (kv.first == type)
            return idx;
        ++idx;
    }
    fatal("device registry: unknown type '%s'", type.c_str());
}

const DeviceRegistry &
DeviceRegistry::builtin()
{
    static const DeviceRegistry reg = [] {
        DeviceRegistry r;
        r.add("extmem", makeExtmem);
        r.add("sensor", makeSensor);
        r.add("actuator", makeActuator);
        r.add("timer", makeTimer);
        r.add("uart", makeUart);
        r.add("dma", makeDma);
        r.add("watchdog", makeWatchdog);
        r.add("gpio", makeGpio);
        r.add("mailbox", makeMailbox);
        if (r.size() != kNumBoardDeviceTypes)
            fatal("device registry: builtin table has %zu types, "
                  "kNumBoardDeviceTypes is %zu",
                  r.size(), kNumBoardDeviceTypes);
        return r;
    }();
    return reg;
}

} // namespace disc
