#include "rts/system.hh"

#include "common/logging.hh"
#include "isa/assembler.hh"

namespace disc
{

namespace
{
constexpr Addr kIoBase = 0x1000;
constexpr Addr kTimerBase = 0x3000;
} // namespace

Addr
RtsSystem::counterAddr(std::size_t i)
{
    return static_cast<Addr>(0x40 + i);
}

Addr
RtsSystem::backgroundAddr()
{
    return 0x3f;
}

RtsSystem::RtsSystem(std::vector<RtsTask> tasks, RtsConfig cfg)
    : tasks_(std::move(tasks)), cfg_(cfg),
      ioDev_(64, cfg.ioLatency == 0 ? 1 : cfg.ioLatency)
{
    if (tasks_.empty())
        fatal("RTS system needs at least one task");
    for (const RtsTask &t : tasks_) {
        if (t.stream >= kNumStreams)
            fatal("task %s: bad stream", t.name.c_str());
        if (t.bit < 1 || t.bit > 7)
            fatal("task %s: interrupt bit must be 1..7", t.name.c_str());
        if (t.period < 16)
            fatal("task %s: period too short", t.name.c_str());
    }
    for (std::size_t a = 0; a < tasks_.size(); ++a) {
        for (std::size_t b = a + 1; b < tasks_.size(); ++b) {
            if (tasks_[a].stream == tasks_[b].stream &&
                tasks_[a].bit == tasks_[b].bit) {
                fatal("tasks %s and %s share stream %u bit %u",
                      tasks_[a].name.c_str(), tasks_[b].name.c_str(),
                      tasks_[a].stream, tasks_[a].bit);
            }
        }
    }

    machine_.attachDevice(kIoBase, 64, &ioDev_);
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
        timers_.push_back(std::make_unique<TimerDevice>(
            tasks_[i].period, tasks_[i].stream, tasks_[i].bit));
        machine_.attachDevice(static_cast<Addr>(kTimerBase + 4 * i), 4,
                              timers_.back().get());
    }

    source_ = generateSource();
    program_ = assemble(source_);
}

std::string
RtsSystem::generateSource() const
{
    std::string src;
    // Vector table entries.
    for (const RtsTask &t : tasks_) {
        src += strprintf(".org %u\n    jmp handler_%s\n",
                         vectorAddress(t.stream, t.bit), t.name.c_str());
    }
    src += strprintf(".org 0x%x\n", kVectorTableEnd);

    if (cfg_.backgroundLoad) {
        src += strprintf(R"(
background:
    ldmd r1, [0x%x]
    addi r1, r1, 1
    stmd r1, [0x%x]
    jmp background
)",
                         backgroundAddr(), backgroundAddr());
    }

    for (std::size_t i = 0; i < tasks_.size(); ++i) {
        const RtsTask &t = tasks_[i];
        src += strprintf("handler_%s:\n", t.name.c_str());
        // Conventional context-switch model: save/restore the register
        // file through internal memory.
        for (unsigned k = 0; k < cfg_.contextSwitchOverhead; ++k) {
            src += strprintf("    stmd r%u, [0x%zx]\n", 1 + k % 4,
                             0x180 + i * 16 + k % 8);
        }
        if (t.workLoops > 0) {
            src += strprintf(R"(    ldi r1, %u
loop_%s:
    subi r1, r1, 1
    cmpi r1, 0
    bne loop_%s
)",
                             t.workLoops, t.name.c_str(), t.name.c_str());
        }
        for (unsigned k = 0; k < t.ioAccesses; ++k)
            src += "    ld r2, [g0]\n";
        // Completion marker.
        src += strprintf(R"(    ldmd r3, [0x%x]
    addi r3, r3, 1
    stmd r3, [0x%x]
)",
                         counterAddr(i), counterAddr(i));
        for (unsigned k = 0; k < cfg_.contextSwitchOverhead; ++k) {
            src += strprintf("    ldmd r%u, [0x%zx]\n", 1 + k % 4,
                             0x180 + i * 16 + k % 8);
        }
        src += strprintf("    clri %u\n    reti\n", t.bit);
    }
    return src;
}

RtsReport
RtsSystem::run()
{
    machine_.load(program_);
    bool custom_shares = false;
    for (unsigned sh : cfg_.shares)
        custom_shares |= sh != 0;
    if (custom_shares)
        machine_.scheduler().setShares(cfg_.shares);
    machine_.writeReg(0, reg::G0, kIoBase);
    if (cfg_.backgroundLoad)
        machine_.startStream(0, program_.symbol("background"));

    RtsReport report;
    report.tasks.resize(tasks_.size());
    std::vector<std::deque<Cycle>> pending(tasks_.size());
    std::vector<std::uint64_t> seenFires(tasks_.size(), 0);
    std::vector<Word> seenCompletions(tasks_.size(), 0);
    // Timers keep counting across runs; re-baseline them.
    for (std::size_t i = 0; i < tasks_.size(); ++i)
        seenFires[i] = timers_[i]->fired();
    for (std::size_t i = 0; i < tasks_.size(); ++i)
        report.tasks[i].name = tasks_[i].name;

    for (Cycle now = 0; now < cfg_.horizon; ++now) {
        machine_.step();
        for (std::size_t i = 0; i < tasks_.size(); ++i) {
            RtsTaskResult &res = report.tasks[i];
            while (seenFires[i] < timers_[i]->fired()) {
                ++seenFires[i];
                ++res.activations;
                pending[i].push_back(now);
            }
            Word done = machine_.internalMemory().read(counterAddr(i));
            while (seenCompletions[i] != done) {
                ++seenCompletions[i];
                ++res.completions;
                if (pending[i].empty()) {
                    warn("task %s completed without a pending release",
                         tasks_[i].name.c_str());
                    continue;
                }
                Cycle release = pending[i].front();
                pending[i].pop_front();
                Cycle response = now - release;
                res.response.add(static_cast<double>(response));
                res.worstResponse = std::max(res.worstResponse, response);
                unsigned deadline = tasks_[i].deadline
                                        ? tasks_[i].deadline
                                        : tasks_[i].period;
                if (response > deadline)
                    ++res.deadlineMisses;
            }
        }
    }

    report.backgroundProgress =
        machine_.internalMemory().read(backgroundAddr());
    report.utilization = machine_.stats().utilization();
    report.readyCycles = machine_.stats().readyCycles;
    report.waitAbiCycles = machine_.stats().waitAbiCycles;
    report.inactiveCycles = machine_.stats().inactiveCycles;
    report.meanVectorLatency = machine_.latencyHistogram().mean();
    report.worstVectorLatency = machine_.latencyHistogram().maxValue();
    return report;
}

} // namespace disc
