/**
 * @file
 * Real-time task-set experiments on the cycle-accurate machine.
 *
 * Builds a complete DISC1 system for a set of periodic interrupt
 * tasks: a timer device per task, an external I/O device for handler
 * accesses, generated handler code (vector table, work loop, optional
 * register save/restore prologue modelling a conventional context
 * switch), and a background compute stream. Running the system
 * measures per-task response times and deadline misses.
 *
 * Two configurations reproduce the paper's argument (section 4.1's
 * interrupt-latency discussion):
 *  - DISC: each task dedicated to its own instruction stream,
 *    zero-cost activation;
 *  - conventional: every task vectors onto one stream, with a
 *    register save/restore prologue/epilogue charged per activation.
 */

#ifndef DISC_RTS_SYSTEM_HH
#define DISC_RTS_SYSTEM_HH

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "arch/devices.hh"
#include "common/stats.hh"
#include "sim/machine.hh"

namespace disc
{

/** One periodic interrupt-driven task. */
struct RtsTask
{
    std::string name;
    StreamId stream = 0;    ///< handling stream
    unsigned bit = 1;       ///< interrupt level (1..7)
    unsigned period = 500;  ///< release period in cycles
    unsigned deadline = 0;  ///< relative deadline; 0 means == period
    unsigned workLoops = 8; ///< handler work-loop iterations (~3 instr each)
    unsigned ioAccesses = 0;///< external reads per activation
};

/** Experiment configuration. */
struct RtsConfig
{
    /** Per-activation register save+restore instructions (each side). */
    unsigned contextSwitchOverhead = 0;

    /** Run a background compute loop on stream 0, level 0. */
    bool backgroundLoad = true;

    /** I/O device access latency for handler reads. */
    unsigned ioLatency = 6;

    /** Measured horizon in cycles. */
    Cycle horizon = 100000;

    /**
     * Scheduler slot shares per stream (sixteenths); all-zero keeps
     * the even partition. This is the paper's throughput
     * partitioning: give critical streams a larger guaranteed share.
     */
    std::array<unsigned, kNumStreams> shares{};
};

/** Measured outcome for one task. */
struct RtsTaskResult
{
    std::string name;
    std::uint64_t activations = 0;
    std::uint64_t completions = 0;
    RunningStat response;       ///< release -> handler completion
    Cycle worstResponse = 0;
    std::uint64_t deadlineMisses = 0;
};

/** Whole-run outcome. */
struct RtsReport
{
    std::vector<RtsTaskResult> tasks;
    std::uint64_t backgroundProgress = 0; ///< background loop counter
    double utilization = 0.0;
    double meanVectorLatency = 0.0;
    Cycle worstVectorLatency = 0;

    /**
     * Per-stream cycle breakdown over the horizon: able to issue,
     * parked on an external access, or inactive. Sums to the horizon
     * per stream; shows where a task set's slack actually went.
     */
    std::array<std::uint64_t, kNumStreams> readyCycles{};
    std::array<std::uint64_t, kNumStreams> waitAbiCycles{};
    std::array<std::uint64_t, kNumStreams> inactiveCycles{};
};

/** Builds and runs one RTS experiment. */
class RtsSystem
{
  public:
    RtsSystem(std::vector<RtsTask> tasks, RtsConfig cfg);

    /** Generated assembly (for inspection and documentation). */
    const std::string &programText() const { return source_; }

    /** Run the experiment and collect the report. */
    RtsReport run();

    /** The machine, for post-run inspection. */
    const Machine &machine() const { return machine_; }

  private:
    std::vector<RtsTask> tasks_;
    RtsConfig cfg_;
    Machine machine_;
    std::vector<std::unique_ptr<TimerDevice>> timers_;
    ExternalMemoryDevice ioDev_;
    std::string source_;
    Program program_;

    /** Internal-memory address of task @p i's completion counter. */
    static Addr counterAddr(std::size_t i);
    /** Internal-memory address of the background progress counter. */
    static Addr backgroundAddr();

    std::string generateSource() const;
};

} // namespace disc

#endif // DISC_RTS_SYSTEM_HH
