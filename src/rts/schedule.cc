#include "rts/schedule.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"

namespace disc
{

std::array<unsigned, kNumStreams>
proportionalShares(const std::array<double, kNumStreams> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        if (w < 0.0)
            fatal("partition weight %f is negative", w);
        total += w;
    }
    if (total <= 0.0)
        fatal("partition weights must have a positive sum");

    // Largest-remainder: floor the ideal shares, then hand out the
    // remaining slots by descending fractional part.
    std::array<unsigned, kNumStreams> shares{};
    std::array<double, kNumStreams> remainder{};
    unsigned assigned = 0;
    for (unsigned s = 0; s < kNumStreams; ++s) {
        double ideal = weights[s] / total * kScheduleSlots;
        shares[s] = static_cast<unsigned>(std::floor(ideal));
        if (weights[s] > 0.0 && shares[s] == 0) {
            shares[s] = 1; // positive demand gets at least one slot
            remainder[s] = -1.0;
        } else {
            remainder[s] = ideal - shares[s];
        }
        assigned += shares[s];
    }
    if (assigned > kScheduleSlots) {
        // Over-assignment can only come from the at-least-one rule;
        // take slots back from the largest shares.
        while (assigned > kScheduleSlots) {
            auto it = std::max_element(shares.begin(), shares.end());
            --*it;
            --assigned;
        }
    }
    std::array<unsigned, kNumStreams> order{0, 1, 2, 3};
    std::sort(order.begin(), order.end(), [&](unsigned a, unsigned b) {
        return remainder[a] > remainder[b];
    });
    for (unsigned i = 0; assigned < kScheduleSlots; ++i) {
        unsigned s = order[i % kNumStreams];
        if (weights[s] > 0.0) {
            ++shares[s];
            ++assigned;
        }
    }
    return shares;
}

std::array<unsigned, kNumStreams>
generalSchedulingShares(const std::array<double, kNumStreams> &demands)
{
    return proportionalShares(demands);
}

double
taskDemand(double work_cycles, double period_cycles)
{
    if (period_cycles <= 0.0)
        fatal("task period must be positive");
    if (work_cycles < 0.0)
        fatal("task work must be non-negative");
    return work_cycles / period_cycles;
}

} // namespace disc
