/**
 * @file
 * Throughput-partition policies (paper sections 1.0 and 3.4).
 *
 * The paper cites Coffman & Denning: if processor throughput can be
 * partitioned arbitrarily among processes, near-optimal scheduling is
 * achievable — provided the partitioning itself costs nothing. DISC's
 * 16-slot table provides 1/16 granularity; these helpers convert task
 * demands into slot shares.
 */

#ifndef DISC_RTS_SCHEDULE_HH
#define DISC_RTS_SCHEDULE_HH

#include <array>
#include <vector>

#include "common/types.hh"

namespace disc
{

/**
 * Convert positive weights into slot shares that sum to
 * kScheduleSlots, using the largest-remainder method. Streams with
 * zero weight receive zero slots, but every stream with positive
 * weight receives at least one.
 */
std::array<unsigned, kNumStreams>
proportionalShares(const std::array<double, kNumStreams> &weights);

/**
 * General-scheduling shares (processor-sharing discipline): each
 * stream's share is proportional to its utilisation demand
 * (work per period). Demands must be non-negative with a positive sum.
 */
std::array<unsigned, kNumStreams>
generalSchedulingShares(const std::array<double, kNumStreams> &demands);

/**
 * Utilisation demand of a periodic task: cycles of work per period.
 */
double taskDemand(double work_cycles, double period_cycles);

} // namespace disc

#endif // DISC_RTS_SCHEDULE_HH
