#include "stochastic/experiment.hh"

#include "common/logging.hh"

namespace disc
{

namespace
{

/**
 * One replication's private output slot, padded to a cache line so
 * adjacent replications never write-share a line. Everything else a
 * replication touches (sources, RNG, model, run totals) is built
 * inside its own lambda body, so worker threads share no mutable
 * state at all: the job scales to the pool with no coherence traffic.
 */
struct alignas(64) ReplicaArena
{
    ExperimentResult result;
};

/** Mix a stream index into a replication seed. */
std::uint64_t
mixSeed(std::uint64_t base, std::uint64_t stream)
{
    std::uint64_t x = base * 0x9e3779b97f4a7c15ULL + stream + 1;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return x;
}

} // namespace

SourceFactory
makeLoadFactory(const LoadSpec &spec)
{
    return [spec](std::uint64_t seed) {
        return std::make_unique<LoadProcess>(spec, seed);
    };
}

SourceFactory
makeCombinedFactory(const LoadSpec &a, const LoadSpec &b)
{
    return [a, b](std::uint64_t seed) {
        return std::make_unique<CombinedSource>(
            std::make_unique<LoadProcess>(a, mixSeed(seed, 101)),
            std::make_unique<LoadProcess>(b, mixSeed(seed, 202)));
    };
}

ExperimentResult
runExperiment(const StochasticConfig &cfg,
              const std::vector<SourceFactory> &streams,
              unsigned replications, std::uint64_t base_seed,
              ThreadPool *pool)
{
    if (streams.empty())
        fatal("experiment needs at least one stream");
    if (replications == 0)
        fatal("experiment needs at least one replication");
    if (!pool)
        pool = &ThreadPool::global();

    // One single-sample result per replication, produced in parallel
    // into cache-line-isolated arenas; the reduction below merges them
    // in replication order so the aggregate does not depend on the
    // pool size.
    std::vector<ReplicaArena> reps(replications);
    pool->parallelFor(replications, [&](std::size_t rep) {
        std::vector<std::unique_ptr<WorkSource>> sources;
        sources.reserve(streams.size());
        for (std::size_t s = 0; s < streams.size(); ++s)
            sources.push_back(
                streams[s](mixSeed(base_seed + rep, s)));
        StochasticModel model(cfg, std::move(sources));
        RunTotals t = model.run();
        ExperimentResult &r = reps[rep].result;
        r.pd.add(t.pd());
        r.ps.add(t.ps(cfg.pipeDepth));
        r.delta.add(t.delta(cfg.pipeDepth));
        r.busyFraction.add(
            t.cycles ? static_cast<double>(t.busyCycles) /
                           static_cast<double>(t.cycles)
                     : 0.0);
    });

    ExperimentResult result;
    for (const ReplicaArena &a : reps) {
        result.pd.merge(a.result.pd);
        result.ps.merge(a.result.ps);
        result.delta.merge(a.result.delta);
        result.busyFraction.merge(a.result.busyFraction);
    }
    return result;
}

ExperimentResult
runPartitioned(const StochasticConfig &cfg, const LoadSpec &spec,
               unsigned k, unsigned replications, std::uint64_t base_seed,
               ThreadPool *pool)
{
    if (k == 0 || k > kNumStreams)
        fatal("cannot partition into %u streams", k);
    std::vector<SourceFactory> streams(k, makeLoadFactory(spec));
    return runExperiment(cfg, streams, replications, base_seed, pool);
}

} // namespace disc
