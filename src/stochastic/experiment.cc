#include "stochastic/experiment.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sim/batch.hh"
#include "sim/machine.hh"

namespace disc
{

namespace
{

/**
 * One replication's private output slot, padded to a cache line so
 * adjacent replications never write-share a line. Everything else a
 * replication touches (sources, RNG, model, run totals) is built
 * inside its own lambda body, so worker threads share no mutable
 * state at all: the job scales to the pool with no coherence traffic.
 */
struct alignas(64) ReplicaArena
{
    ExperimentResult result;
};

/** Mix a stream index into a replication seed. */
std::uint64_t
mixSeed(std::uint64_t base, std::uint64_t stream)
{
    std::uint64_t x = base * 0x9e3779b97f4a7c15ULL + stream + 1;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return x;
}

} // namespace

SourceFactory
makeLoadFactory(const LoadSpec &spec)
{
    return [spec](std::uint64_t seed) {
        return std::make_unique<LoadProcess>(spec, seed);
    };
}

SourceFactory
makeCombinedFactory(const LoadSpec &a, const LoadSpec &b)
{
    return [a, b](std::uint64_t seed) {
        return std::make_unique<CombinedSource>(
            std::make_unique<LoadProcess>(a, mixSeed(seed, 101)),
            std::make_unique<LoadProcess>(b, mixSeed(seed, 202)));
    };
}

ExperimentResult
runExperiment(const StochasticConfig &cfg,
              const std::vector<SourceFactory> &streams,
              unsigned replications, std::uint64_t base_seed,
              ThreadPool *pool)
{
    if (streams.empty())
        fatal("experiment needs at least one stream");
    if (replications == 0)
        fatal("experiment needs at least one replication");
    if (!pool)
        pool = &ThreadPool::global();

    // One single-sample result per replication, produced in parallel
    // into cache-line-isolated arenas; the reduction below merges them
    // in replication order so the aggregate does not depend on the
    // pool size.
    std::vector<ReplicaArena> reps(replications);
    // Replicas are handed out in contiguous groups — one pool task
    // per group, two groups per thread for balance — so each worker
    // runs its replicas back-to-back instead of claiming them one at
    // a time. Seeds depend only on (base_seed, rep), so the grouping
    // cannot change any result.
    std::size_t group = replications / (2 * pool->size());
    if (group == 0)
        group = 1;
    pool->parallelForGroups(
        replications, group, [&](std::size_t begin, std::size_t end) {
            for (std::size_t rep = begin; rep < end; ++rep) {
                std::vector<std::unique_ptr<WorkSource>> sources;
                sources.reserve(streams.size());
                for (std::size_t s = 0; s < streams.size(); ++s)
                    sources.push_back(
                        streams[s](mixSeed(base_seed + rep, s)));
                StochasticModel model(cfg, std::move(sources));
                RunTotals t = model.run();
                ExperimentResult &r = reps[rep].result;
                r.pd.add(t.pd());
                r.ps.add(t.ps(cfg.pipeDepth));
                r.delta.add(t.delta(cfg.pipeDepth));
                r.busyFraction.add(
                    t.cycles ? static_cast<double>(t.busyCycles) /
                                   static_cast<double>(t.cycles)
                             : 0.0);
            }
        });

    ExperimentResult result;
    for (const ReplicaArena &a : reps) {
        result.pd.merge(a.result.pd);
        result.ps.merge(a.result.ps);
        result.delta.merge(a.result.delta);
        result.busyFraction.merge(a.result.busyFraction);
    }
    return result;
}

ExperimentResult
runPartitioned(const StochasticConfig &cfg, const LoadSpec &spec,
               unsigned k, unsigned replications, std::uint64_t base_seed,
               ThreadPool *pool)
{
    if (k == 0 || k > kNumStreams)
        fatal("cannot partition into %u streams", k);
    std::vector<SourceFactory> streams(k, makeLoadFactory(spec));
    return runExperiment(cfg, streams, replications, base_seed, pool);
}

std::vector<std::unique_ptr<Machine>>
runMachineReplicas(const MachineFactory &make, unsigned replications,
                   Cycle horizon, std::uint64_t base_seed,
                   ThreadPool *pool, std::size_t width)
{
    if (replications == 0)
        fatal("experiment needs at least one replication");
    if (width == 0)
        width = 1;
    if (!pool)
        pool = &ThreadPool::global();

    std::vector<std::unique_ptr<Machine>> machines(replications);
    // Same grouping as runExperiment(); within a group the replicas
    // advance as MachineBatch lanes of up to `width` in lockstep.
    // batch.run(horizon, false) is bit-identical per machine to
    // m.run(horizon, false), so neither grouping nor width is
    // observable in the results.
    std::size_t group = replications / (2 * pool->size());
    if (group == 0)
        group = 1;
    pool->parallelForGroups(
        replications, group, [&](std::size_t begin, std::size_t end) {
            for (std::size_t rep = begin; rep < end; ++rep)
                machines[rep] = make(static_cast<unsigned>(rep),
                                     mixSeed(base_seed, rep));
            MachineBatch batch(width);
            for (std::size_t at = begin; at < end; at += width) {
                std::size_t hi = std::min(end, at + width);
                batch.clear();
                for (std::size_t rep = at; rep < hi; ++rep)
                    batch.add(machines[rep].get());
                batch.run(horizon, false);
            }
        });
    return machines;
}

} // namespace disc
