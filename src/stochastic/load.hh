/**
 * @file
 * Stochastic workload model (paper section 4.1, Table 4.1).
 *
 * Each instruction stream's offered work is a stochastic process with
 * Poisson-distributed phase lengths:
 *
 *   meanon   mean number of consecutive instructions while active
 *   meanoff  mean number of cycles inactive between bursts
 *   mean_req mean instructions between external access requests
 *   alpha    fraction of external requests that go to memory
 *   tmem     wait cycles of an external memory access
 *   mean_io  mean wait cycles of an I/O access (Poisson)
 *   aljmp    fraction of instructions that modify program flow
 *
 * The OCR of the paper's Table 4.1 lost its numeric cells, so the
 * standard loads below are re-derived from the prose:
 *   load 1: typical RTS, always active;
 *   load 2: typical RTS, alternately active and inactive;
 *   load 3: DSP program running only from internal memory;
 *   load 4: interrupt-driven, active only while handling interrupts.
 * Combined loads (e.g. "1:4") multiplex two processes on one stream.
 */

#ifndef DISC_STOCHASTIC_LOAD_HH
#define DISC_STOCHASTIC_LOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"

namespace disc
{

/** Parameter set of one stochastic load (one Table 4.1 column). */
struct LoadSpec
{
    std::string name;
    double meanOn = 0;    ///< 0 means "always active"
    double meanOff = 0;   ///< 0 means "never inactive"
    double meanReq = 0;   ///< 0 means "no external requests"
    double alpha = 0;     ///< P(request goes to memory)
    unsigned tmem = 0;    ///< memory access wait cycles
    double meanIo = 0;    ///< mean I/O wait cycles
    double alJmp = 0;     ///< P(instruction is jump-type)

    /** True when the load never goes inactive. */
    bool alwaysActive() const { return meanOff <= 0; }
};

/** Classification of one generated instruction. */
struct InstrClass
{
    bool jump = false;       ///< modifies program flow
    bool external = false;   ///< external bus request
    unsigned accessTime = 0; ///< bus wait cycles when external
};

/**
 * Abstract source of classified instructions, with active/inactive
 * phases. The model issues next() only while active(); every cycle a
 * source is not issued from, tickIdle() advances its wall-clock
 * phases.
 */
class WorkSource
{
  public:
    virtual ~WorkSource() = default;

    /** Is the source offering an instruction right now? */
    virtual bool active() const = 0;

    /** Consume and classify the next instruction (requires active()). */
    virtual InstrClass next() = 0;

    /** Advance one cycle of wall-clock time while inactive. */
    virtual void tickIdle() = 0;

    /** Source label for reports. */
    virtual std::string name() const = 0;
};

/** A single LoadSpec driven by its own RNG. */
class LoadProcess : public WorkSource
{
  public:
    LoadProcess(LoadSpec spec, std::uint64_t seed);

    bool active() const override;
    InstrClass next() override;
    void tickIdle() override;
    std::string name() const override { return spec_.name; }

    /** The parameter set. */
    const LoadSpec &spec() const { return spec_; }

  private:
    LoadSpec spec_;
    Rng rng_;
    std::uint64_t onRemaining_ = 0;  ///< instructions left in burst
    std::uint64_t offRemaining_ = 0; ///< cycles left inactive
    std::uint64_t reqCountdown_ = 0; ///< instructions to next request

    void drawOn();
    void drawOff();
    void drawReq();
};

/**
 * Statistical combination of two loads into a single instruction
 * stream (the paper's "load (1:4)"): the stream is active whenever
 * either sub-process is, and instructions are served alternately from
 * the active sub-processes.
 */
class CombinedSource : public WorkSource
{
  public:
    CombinedSource(std::unique_ptr<WorkSource> a,
                   std::unique_ptr<WorkSource> b);

    bool active() const override;
    InstrClass next() override;
    void tickIdle() override;
    std::string name() const override;

  private:
    std::unique_ptr<WorkSource> a_;
    std::unique_ptr<WorkSource> b_;
    bool serveB_ = false; ///< alternation cursor
};

/** The paper's standard loads 1..4 (prose-derived parameters). */
LoadSpec standardLoad(unsigned number);

/** All four standard loads. */
std::vector<LoadSpec> standardLoads();

} // namespace disc

#endif // DISC_STOCHASTIC_LOAD_HH
