/**
 * @file
 * The stochastic DISC sequencer model (paper section 4.1).
 *
 * This is a direct implementation of the evaluation model the paper
 * used: an interleaved pipe fed by stochastic work sources, with the
 * DISC1 sequencer's scheduling, the simplifying flush assumptions and
 * the bus-busy arbitration spelled out in section 4.1:
 *
 *  - when a jump executes, all same-IS instructions in the pipe are
 *    flushed;
 *  - an external request with access time > 0 flushes the same-IS
 *    instructions and puts the IS into a wait state;
 *  - if the bus is busy at request time, the requesting instruction is
 *    itself flushed and retried once the IS leaves the wait state;
 *  - completion of an external access clears all waiting flags.
 *
 * Two measures are produced: PD (processor utilisation on DISC) and
 * Ps (the analytical standard-processor utilisation), from which
 * delta = (PD - Ps) / Ps * 100%.
 */

#ifndef DISC_STOCHASTIC_MODEL_HH
#define DISC_STOCHASTIC_MODEL_HH

#include <memory>
#include <vector>

#include "arch/scheduler.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "stochastic/load.hh"

namespace disc
{

/** Stochastic-model run parameters. */
struct StochasticConfig
{
    unsigned pipeDepth = kDisc1PipeDepth;
    Scheduler::Mode schedMode = Scheduler::Mode::Dynamic;
    Cycle warmup = 5000;    ///< cycles discarded before counting
    Cycle horizon = 200000; ///< measured cycles

    /**
     * Slot shares per stream (sixteenths). All-zero (the default)
     * means an even partition over the configured streams.
     */
    std::array<unsigned, kNumStreams> shares{};
};

/** Raw totals of one stochastic run. */
struct RunTotals
{
    Cycle cycles = 0;        ///< measured cycles
    Cycle busyCycles = 0;    ///< cycles with any stream engaged
    std::uint64_t executed = 0;
    std::uint64_t jumps = 0; ///< jump-type instructions executed
    Cycle busBusy = 0;       ///< data-bus busy cycles
    std::uint64_t flushedJump = 0;
    std::uint64_t flushedWait = 0;
    std::uint64_t busRejections = 0;
    std::uint64_t bubbles = 0;
    std::vector<std::uint64_t> perStreamExecuted;

    /**
     * Activation (scheduling) latency: cycles from a stream's burst
     * start (inactive -> active, e.g. an interrupt arrival) to the
     * issue of its first instruction. This is the paper's "interrupt
     * latency measure" at the scheduling level, complementing the
     * machine's vector-entry latency.
     */
    Histogram activationLatency{64};

    /** DISC processor utilisation. */
    double pd() const;

    /**
     * The paper's standard-processor utilisation: executable
     * instructions over executable + bus busy + jump-flush cycles.
     */
    double ps(unsigned pipe_depth) const;

    /** delta = (PD - Ps)/Ps * 100%. */
    double delta(unsigned pipe_depth) const;
};

/** One run of the stochastic sequencer over a set of work sources. */
class StochasticModel
{
  public:
    /**
     * @param cfg     run parameters.
     * @param sources one work source per instruction stream (at most
     *                kNumStreams).
     */
    StochasticModel(StochasticConfig cfg,
                    std::vector<std::unique_ptr<WorkSource>> sources);

    /** Run warmup + horizon and return the measured totals. */
    RunTotals run();

  private:
    struct Slot
    {
        bool valid = false;
        bool squashed = false;
        StreamId stream = kNoStream;
        InstrClass cls;
    };

    enum class Wait : std::uint8_t { Ready, BusFree, Access };

    StochasticConfig cfg_;
    std::vector<std::unique_ptr<WorkSource>> sources_;
    Scheduler sched_;
    std::vector<Slot> pipe_;
    std::vector<Wait> wait_;
    std::vector<bool> hasRetry_;
    std::vector<InstrClass> retry_;
    std::vector<bool> wasActive_;
    std::vector<bool> latencyArmed_;
    std::vector<Cycle> activatedAt_;
    Cycle now_ = 0;
    Cycle busRemaining_ = 0;
    RunTotals totals_;
    bool counting_ = false;

    void stepOnce();
    void resolveAt(unsigned stage);
    void flushSameStream(StreamId s, unsigned below_stage,
                         std::uint64_t *counter);
    bool engaged() const;
};

} // namespace disc

#endif // DISC_STOCHASTIC_MODEL_HH
