#include "stochastic/model.hh"

#include "common/logging.hh"

namespace disc
{

double
RunTotals::pd() const
{
    if (busyCycles == 0)
        return 0.0;
    return static_cast<double>(executed) /
           static_cast<double>(busyCycles);
}

double
RunTotals::ps(unsigned pipe_depth) const
{
    double e = static_cast<double>(executed);
    if (e == 0.0)
        return 0.0;
    double denom = e + static_cast<double>(busBusy) +
                   static_cast<double>(jumps) *
                       static_cast<double>(pipe_depth - 1);
    return e / denom;
}

double
RunTotals::delta(unsigned pipe_depth) const
{
    double p = ps(pipe_depth);
    if (p == 0.0)
        return 0.0;
    return (pd() - p) / p * 100.0;
}

StochasticModel::StochasticModel(
    StochasticConfig cfg, std::vector<std::unique_ptr<WorkSource>> sources)
    : cfg_(cfg), sources_(std::move(sources))
{
    if (sources_.empty())
        fatal("stochastic model needs at least one work source");
    if (sources_.size() > kNumStreams)
        fatal("stochastic model supports at most %u streams",
              kNumStreams);
    if (cfg_.pipeDepth < 2)
        fatal("stochastic model needs a pipe depth of at least 2");
    sched_.setMode(cfg_.schedMode);
    bool custom_shares = false;
    for (unsigned s : cfg_.shares)
        custom_shares |= s != 0;
    if (custom_shares)
        sched_.setShares(cfg_.shares);
    else
        sched_.setEven(static_cast<unsigned>(sources_.size()));
    pipe_.resize(cfg_.pipeDepth);
    wait_.assign(sources_.size(), Wait::Ready);
    hasRetry_.assign(sources_.size(), false);
    retry_.resize(sources_.size());
    wasActive_.assign(sources_.size(), false);
    latencyArmed_.assign(sources_.size(), false);
    activatedAt_.assign(sources_.size(), 0);
    for (std::size_t s = 0; s < sources_.size(); ++s)
        wasActive_[s] = sources_[s]->active();
    totals_.perStreamExecuted.assign(sources_.size(), 0);
}

bool
StochasticModel::engaged() const
{
    if (busRemaining_ > 0)
        return true;
    for (std::size_t s = 0; s < sources_.size(); ++s) {
        if (wait_[s] != Wait::Ready || hasRetry_[s] ||
            sources_[s]->active()) {
            return true;
        }
    }
    for (const Slot &slot : pipe_) {
        if (slot.valid && !slot.squashed)
            return true;
    }
    return false;
}

void
StochasticModel::flushSameStream(StreamId s, unsigned below_stage,
                                 std::uint64_t *counter)
{
    for (unsigned i = 0; i < below_stage; ++i) {
        Slot &slot = pipe_[i];
        if (slot.valid && !slot.squashed && slot.stream == s) {
            slot.squashed = true;
            if (counting_ && counter)
                ++(*counter);
        }
    }
}

void
StochasticModel::resolveAt(unsigned stage)
{
    Slot &slot = pipe_[stage];
    if (!slot.valid || slot.squashed)
        return;
    StreamId s = slot.stream;

    if (slot.cls.external && slot.cls.accessTime > 0) {
        if (busRemaining_ > 0) {
            // Bus busy: the access instruction itself is flushed and
            // retried after the stream leaves the wait state.
            slot.squashed = true;
            if (counting_) {
                ++totals_.busRejections;
                ++totals_.flushedWait;
            }
            flushSameStream(s, stage, &totals_.flushedWait);
            hasRetry_[s] = true;
            retry_[s] = slot.cls;
            wait_[s] = Wait::BusFree;
            return;
        }
        // Start the access; the stream waits until it completes.
        busRemaining_ = slot.cls.accessTime;
        flushSameStream(s, stage, &totals_.flushedWait);
        wait_[s] = Wait::Access;
    } else if (slot.cls.jump) {
        // The simplifying assumption: a jump flushes every same-IS
        // instruction still in the pipe.
        flushSameStream(s, stage, &totals_.flushedJump);
    }

    if (counting_) {
        ++totals_.executed;
        ++totals_.perStreamExecuted[s];
        if (slot.cls.jump)
            ++totals_.jumps;
    }
}

void
StochasticModel::stepOnce()
{
    bool was_engaged = engaged();

    // Bus progress; completion clears all waiting flags (paper 4.1).
    if (busRemaining_ > 0) {
        if (counting_)
            ++totals_.busBusy;
        if (--busRemaining_ == 0) {
            for (auto &w : wait_)
                w = Wait::Ready;
        }
    }

    // Advance the pipe. Control resolves at the *end* of the pipe and
    // fetch happens before resolution, so a jump flushes the full
    // (pipe_length - 1) younger same-IS instructions — the same charge
    // the Ps model levies on the standard processor.
    for (unsigned i = cfg_.pipeDepth - 1; i > 0; --i)
        pipe_[i] = pipe_[i - 1];
    pipe_[0] = Slot{};

    // Issue (before resolve: the fetch of this cycle is already in
    // flight when the oldest instruction redirects or waits).
    unsigned ready = 0;
    for (std::size_t s = 0; s < sources_.size(); ++s) {
        if (wait_[s] != Wait::Ready)
            continue;
        if (hasRetry_[s] || sources_[s]->active())
            ready |= 1u << s;
    }
    StreamId chosen = sched_.pick(ready);
    if (chosen == kNoStream) {
        if (counting_)
            ++totals_.bubbles;
    } else {
        if (latencyArmed_[chosen]) {
            if (counting_) {
                totals_.activationLatency.add(now_ -
                                              activatedAt_[chosen]);
            }
            latencyArmed_[chosen] = false;
        }
        Slot &slot = pipe_[0];
        slot.valid = true;
        slot.squashed = false;
        slot.stream = chosen;
        if (hasRetry_[chosen]) {
            slot.cls = retry_[chosen];
            hasRetry_[chosen] = false;
        } else {
            slot.cls = sources_[chosen]->next();
        }
    }

    // Resolve the instruction that reached the last stage.
    resolveAt(cfg_.pipeDepth - 1);

    // Inactive sources age in wall-clock time; arm the activation
    // latency probe on each inactive -> active transition.
    for (std::size_t s = 0; s < sources_.size(); ++s) {
        if (!sources_[s]->active() && !hasRetry_[s])
            sources_[s]->tickIdle();
        bool active_now = sources_[s]->active() || hasRetry_[s];
        if (active_now && !wasActive_[s]) {
            activatedAt_[s] = now_ + 1; // issuable from next cycle
            latencyArmed_[s] = true;
        }
        wasActive_[s] = active_now;
    }

    ++now_;
    if (counting_) {
        ++totals_.cycles;
        if (was_engaged || engaged())
            ++totals_.busyCycles;
    }
}

RunTotals
StochasticModel::run()
{
    counting_ = false;
    for (Cycle c = 0; c < cfg_.warmup; ++c)
        stepOnce();
    counting_ = true;
    for (Cycle c = 0; c < cfg_.horizon; ++c)
        stepOnce();
    return totals_;
}

} // namespace disc
