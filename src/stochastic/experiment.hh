/**
 * @file
 * Replicated-run experiment driver: builds stream configurations
 * (partitioned loads, combined loads, mixes) for the stochastic
 * model, runs several seeds and aggregates PD / Ps / delta; plus the
 * cycle-accurate counterpart, which advances replica Machines in
 * lockstep batches (sim/batch.hh) per pool thread.
 */

#ifndef DISC_STOCHASTIC_EXPERIMENT_HH
#define DISC_STOCHASTIC_EXPERIMENT_HH

#include <functional>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/threadpool.hh"
#include "stochastic/model.hh"

namespace disc
{

/** Builds one stream's work source from a replication seed. */
using SourceFactory =
    std::function<std::unique_ptr<WorkSource>(std::uint64_t seed)>;

/** Aggregated measures over replications. */
struct ExperimentResult
{
    RunningStat pd;
    RunningStat ps;
    RunningStat delta;
    RunningStat busyFraction; ///< busy cycles / measured cycles
};

/** A factory for a plain LoadSpec stream. */
SourceFactory makeLoadFactory(const LoadSpec &spec);

/** A factory for a combined (two-spec) stream, e.g. load "1:4". */
SourceFactory makeCombinedFactory(const LoadSpec &a, const LoadSpec &b);

/**
 * Run the model with one stream per factory, @p replications times
 * with distinct seeds, and aggregate the measures.
 *
 * Replications run in parallel on @p pool (the global pool when
 * nullptr). Each replication's seeds depend only on (base_seed, rep,
 * stream) and per-replication results merge in replication order, so
 * the aggregate is bit-identical for every pool size. Factories are
 * invoked concurrently and must be thread-safe (the stock factories
 * are: they only copy value-captured specs).
 */
ExperimentResult runExperiment(const StochasticConfig &cfg,
                               const std::vector<SourceFactory> &streams,
                               unsigned replications,
                               std::uint64_t base_seed = 1,
                               ThreadPool *pool = nullptr);

/**
 * Table 4.2 helper: partition @p spec into @p k iid streams and run.
 */
ExperimentResult runPartitioned(const StochasticConfig &cfg,
                                const LoadSpec &spec, unsigned k,
                                unsigned replications,
                                std::uint64_t base_seed = 1,
                                ThreadPool *pool = nullptr);

class Machine;

/**
 * Builds one replication's fully-prepared Machine: program loaded,
 * streams started, devices attached (any device a replica needs must
 * be owned by the factory's captures, indexed by @p rep so slots are
 * never shared). Invoked concurrently; must be thread-safe.
 */
using MachineFactory =
    std::function<std::unique_ptr<Machine>(unsigned rep,
                                           std::uint64_t seed)>;

/**
 * Run @p replications cycle-accurate replicas for @p horizon cycles
 * and return the Machines in replication order for inspection.
 *
 * Replicas are distributed over @p pool (the global pool when
 * nullptr) in contiguous groups, and each group advances through a
 * MachineBatch of up to @p width lanes in lockstep rather than one
 * Machine per task. Per-machine state is bit-identical to scalar
 * Machine::run(horizon, false) for every pool size and width (the
 * MachineBatch contract), so grouping is purely a throughput choice.
 * Seeds depend only on (base_seed, rep).
 */
std::vector<std::unique_ptr<Machine>>
runMachineReplicas(const MachineFactory &make, unsigned replications,
                   Cycle horizon, std::uint64_t base_seed = 1,
                   ThreadPool *pool = nullptr, std::size_t width = 16);

} // namespace disc

#endif // DISC_STOCHASTIC_EXPERIMENT_HH
