/**
 * @file
 * Replicated-run experiment driver for the stochastic model: builds
 * stream configurations (partitioned loads, combined loads, mixes),
 * runs several seeds and aggregates PD / Ps / delta.
 */

#ifndef DISC_STOCHASTIC_EXPERIMENT_HH
#define DISC_STOCHASTIC_EXPERIMENT_HH

#include <functional>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/threadpool.hh"
#include "stochastic/model.hh"

namespace disc
{

/** Builds one stream's work source from a replication seed. */
using SourceFactory =
    std::function<std::unique_ptr<WorkSource>(std::uint64_t seed)>;

/** Aggregated measures over replications. */
struct ExperimentResult
{
    RunningStat pd;
    RunningStat ps;
    RunningStat delta;
    RunningStat busyFraction; ///< busy cycles / measured cycles
};

/** A factory for a plain LoadSpec stream. */
SourceFactory makeLoadFactory(const LoadSpec &spec);

/** A factory for a combined (two-spec) stream, e.g. load "1:4". */
SourceFactory makeCombinedFactory(const LoadSpec &a, const LoadSpec &b);

/**
 * Run the model with one stream per factory, @p replications times
 * with distinct seeds, and aggregate the measures.
 *
 * Replications run in parallel on @p pool (the global pool when
 * nullptr). Each replication's seeds depend only on (base_seed, rep,
 * stream) and per-replication results merge in replication order, so
 * the aggregate is bit-identical for every pool size. Factories are
 * invoked concurrently and must be thread-safe (the stock factories
 * are: they only copy value-captured specs).
 */
ExperimentResult runExperiment(const StochasticConfig &cfg,
                               const std::vector<SourceFactory> &streams,
                               unsigned replications,
                               std::uint64_t base_seed = 1,
                               ThreadPool *pool = nullptr);

/**
 * Table 4.2 helper: partition @p spec into @p k iid streams and run.
 */
ExperimentResult runPartitioned(const StochasticConfig &cfg,
                                const LoadSpec &spec, unsigned k,
                                unsigned replications,
                                std::uint64_t base_seed = 1,
                                ThreadPool *pool = nullptr);

} // namespace disc

#endif // DISC_STOCHASTIC_EXPERIMENT_HH
