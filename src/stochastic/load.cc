#include "stochastic/load.hh"

#include <algorithm>

#include "common/logging.hh"

namespace disc
{

LoadProcess::LoadProcess(LoadSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), rng_(seed)
{
    if (spec_.alpha < 0.0 || spec_.alpha > 1.0)
        fatal("load %s: alpha must be in [0,1]", spec_.name.c_str());
    if (spec_.alJmp < 0.0 || spec_.alJmp > 1.0)
        fatal("load %s: aljmp must be in [0,1]", spec_.name.c_str());
    drawOn();
    drawReq();
}

void
LoadProcess::drawOn()
{
    if (spec_.alwaysActive() || spec_.meanOn <= 0) {
        onRemaining_ = ~0ull;
        return;
    }
    onRemaining_ = std::max<std::uint64_t>(1, rng_.poisson(spec_.meanOn));
}

void
LoadProcess::drawOff()
{
    offRemaining_ =
        std::max<std::uint64_t>(1, rng_.poisson(spec_.meanOff));
}

void
LoadProcess::drawReq()
{
    if (spec_.meanReq <= 0) {
        reqCountdown_ = ~0ull;
        return;
    }
    reqCountdown_ =
        std::max<std::uint64_t>(1, rng_.poisson(spec_.meanReq));
}

bool
LoadProcess::active() const
{
    return offRemaining_ == 0;
}

InstrClass
LoadProcess::next()
{
    if (!active())
        panic("load %s: next() while inactive", spec_.name.c_str());

    InstrClass cls;
    if (reqCountdown_ != ~0ull && --reqCountdown_ == 0) {
        cls.external = true;
        if (rng_.chance(spec_.alpha)) {
            cls.accessTime = spec_.tmem;
        } else {
            cls.accessTime = std::max<std::uint64_t>(
                1, rng_.poisson(spec_.meanIo));
        }
        drawReq();
    } else if (rng_.chance(spec_.alJmp)) {
        cls.jump = true;
    }

    if (onRemaining_ != ~0ull && --onRemaining_ == 0)
        drawOff();
    return cls;
}

void
LoadProcess::tickIdle()
{
    if (offRemaining_ > 0 && --offRemaining_ == 0)
        drawOn();
}

CombinedSource::CombinedSource(std::unique_ptr<WorkSource> a,
                               std::unique_ptr<WorkSource> b)
    : a_(std::move(a)), b_(std::move(b))
{
    if (!a_ || !b_)
        panic("CombinedSource needs two sub-sources");
}

bool
CombinedSource::active() const
{
    return a_->active() || b_->active();
}

InstrClass
CombinedSource::next()
{
    bool a_ok = a_->active();
    bool b_ok = b_->active();
    if (!a_ok && !b_ok)
        panic("CombinedSource::next() while inactive");

    // Serve the alternation target when possible; the idle sub-source
    // keeps aging so its off-phase still elapses in wall-clock time.
    bool use_b = b_ok && (serveB_ || !a_ok);
    WorkSource *chosen = use_b ? b_.get() : a_.get();
    WorkSource *other = use_b ? a_.get() : b_.get();
    if (!other->active())
        other->tickIdle();
    serveB_ = !use_b;
    return chosen->next();
}

void
CombinedSource::tickIdle()
{
    if (!a_->active())
        a_->tickIdle();
    if (!b_->active())
        b_->tickIdle();
}

std::string
CombinedSource::name() const
{
    return a_->name() + ":" + b_->name();
}

LoadSpec
standardLoad(unsigned number)
{
    // Values re-derived from the prose of sections 4.1/4.2 (the OCR
    // lost Table 4.1's cells); see DESIGN.md and EXPERIMENTS.md.
    switch (number) {
      case 1:
        // Typical RTS behaviour, always active: a control program
        // doing a mix of computation, peripheral I/O and branching.
        return {"load1", /*meanOn=*/0, /*meanOff=*/0,
                /*meanReq=*/20, /*alpha=*/0.5, /*tmem=*/4,
                /*meanIo=*/12, /*alJmp=*/0.15};
      case 2:
        // Typical RTS behaviour but alternately active and inactive.
        return {"load2", /*meanOn=*/60, /*meanOff=*/40,
                /*meanReq=*/20, /*alpha=*/0.5, /*tmem=*/4,
                /*meanIo=*/12, /*alJmp=*/0.15};
      case 3:
        // DSP-type program running only from internal memory: no
        // external requests, few branches (unrolled kernels).
        return {"load3", /*meanOn=*/0, /*meanOff=*/0,
                /*meanReq=*/0, /*alpha=*/0.0, /*tmem=*/0,
                /*meanIo=*/0, /*alJmp=*/0.05};
      case 4:
        // Interrupt-driven program, active only while handling an
        // interrupt; handlers are short, I/O-heavy and branchy.
        return {"load4", /*meanOn=*/25, /*meanOff=*/120,
                /*meanReq=*/8, /*alpha=*/0.3, /*tmem=*/4,
                /*meanIo=*/16, /*alJmp=*/0.20};
      default:
        fatal("standard load %u does not exist (1..4)", number);
    }
}

std::vector<LoadSpec>
standardLoads()
{
    return {standardLoad(1), standardLoad(2), standardLoad(3),
            standardLoad(4)};
}

} // namespace disc
