/**
 * @file
 * disc-cc: compile a DCC source file to DISC1 assembly, optionally
 * assembling and running it in one step.
 *
 * Usage:
 *   disc-cc FILE.dc [options]
 *     -S             print the generated assembly and exit
 *     --run          assemble and run; print main's return value
 *     --cycles N     cycle budget for --run (default 1000000)
 *     --dump ADDR[:N]  dump internal-memory words after --run
 *
 * Default behaviour (no options) is -S.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "dcc/dcc.hh"
#include "isa/assembler.hh"
#include "sim/machine.hh"

using namespace disc;

int
main(int argc, char **argv)
{
    try {
        if (argc < 2)
            fatal("usage: disc-cc FILE.dc [-S | --run] [--cycles N]");
        std::ifstream in(argv[1]);
        if (!in)
            fatal("cannot open '%s'", argv[1]);
        std::ostringstream ss;
        ss << in.rdbuf();

        bool run = false;
        Cycle budget = 1000000;
        std::vector<std::pair<Addr, unsigned>> dumps;
        for (int i = 2; i < argc; ++i) {
            const char *a = argv[i];
            auto value = [&]() -> const char * {
                if (i + 1 >= argc)
                    fatal("option %s needs a value", a);
                return argv[++i];
            };
            if (!std::strcmp(a, "-S"))
                run = false;
            else if (!std::strcmp(a, "--run"))
                run = true;
            else if (!std::strcmp(a, "--cycles"))
                budget = std::strtoull(value(), nullptr, 0);
            else if (!std::strcmp(a, "--dump")) {
                unsigned addr, n = 8;
                if (std::sscanf(value(), "%i:%i", &addr, &n) < 1)
                    fatal("--dump wants ADDR[:N]");
                dumps.emplace_back(static_cast<Addr>(addr), n);
            } else {
                fatal("unknown option '%s'", a);
            }
        }

        std::string asm_text = dcc::compile(ss.str());
        if (!run) {
            std::fputs(asm_text.c_str(), stdout);
            return 0;
        }

        Program prog = assemble(asm_text);
        Machine m;
        m.load(prog);
        m.startStream(0, prog.symbol("__start"));
        Cycle ran = m.run(budget);
        std::printf("cycles=%llu idle=%s main() = %d (0x%04x)\n",
                    static_cast<unsigned long long>(ran),
                    m.idle() ? "yes" : "no",
                    static_cast<SWord>(m.readReg(0, reg::G0)),
                    m.readReg(0, reg::G0));
        for (auto [addr, n] : dumps) {
            std::printf("mem[0x%03x]:", addr);
            for (unsigned k = 0; k < n; ++k)
                std::printf(" %04x",
                            m.internalMemory().read(
                                static_cast<Addr>(addr + k)));
            std::printf("\n");
        }
        return 0;
    } catch (const FatalError &) {
        return 1;
    }
}
