#!/usr/bin/env python3
"""Compare a fresh throughput run against the committed baseline.

Usage: check_perf.py BASELINE.json CURRENT.json [--tolerance 0.25]

Reads two BENCH_throughput.json files (schema 3; schema 1/2
baselines still work for the sections they carry) and fails with exit
status 1 if any machine scenario's cycles_per_sec dropped by more
than the tolerance relative to the baseline. Schema-3 files also
carry a "dispatch" section (per execution tier: interp/uop/
superblock); those scenarios are compared the same way when both
files have them. Improvements and absolute cross-host differences
never fail the check; the point is to catch a change that makes the
simulator dramatically slower, not to pin the host.

--superblock-min-ratio R additionally asserts, on the CURRENT file
alone, that the superblock tier is at least R times the uop tier on
single_stream — the within-run ratio is host-speed-independent, so
it is the one absolute performance promise CI can hold. Standard
library only, so CI can run it anywhere.
"""

import argparse
import json
import sys


def main() -> int:
    ap = argparse.ArgumentParser(
        description="fail on >tolerance throughput regressions")
    ap.add_argument("baseline", help="committed BENCH_throughput.json")
    ap.add_argument("current", help="freshly produced results")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed fractional drop (default 0.25)")
    ap.add_argument("--superblock-min-ratio", type=float, default=None,
                    help="fail unless current dispatch.single_stream "
                         "superblock/uop cycles_per_sec >= this ratio")
    args = ap.parse_args()

    with open(args.baseline) as f:
        base = json.load(f)
    with open(args.current) as f:
        cur = json.load(f)

    # Only compare schemas this script understands; a result file from
    # a newer tool (or a different bench, e.g. BENCH_serve.json) is
    # skipped rather than misread.
    known = (1, 2, 3)
    for name, data in (("baseline", base), ("current", cur)):
        schema = data.get("schema")
        if schema not in known:
            print(f"skipping: {name} file has unknown schema "
                  f"{schema!r} (known: {known})")
            return 0

    floor = 1.0 - args.tolerance
    failures = []
    for scenario, b in base.get("machine", {}).items():
        c = cur.get("machine", {}).get(scenario)
        if c is None:
            failures.append(f"{scenario}: missing from current results")
            continue
        bv = float(b["cycles_per_sec"])
        cv = float(c["cycles_per_sec"])
        ratio = cv / bv if bv > 0 else 0.0
        ok = ratio >= floor
        print(f"{scenario:16s} baseline {bv / 1e6:9.2f}M/s  "
              f"current {cv / 1e6:9.2f}M/s  ratio {ratio:5.2f}  "
              f"{'ok' if ok else 'REGRESSED'}")
        if not ok:
            failures.append(
                f"{scenario}: {cv / 1e6:.2f}M/s is "
                f"{(1 - ratio) * 100:.0f}% below baseline "
                f"{bv / 1e6:.2f}M/s (tolerance "
                f"{args.tolerance * 100:.0f}%)")

    # Schema-3 dispatch section: same regression rule per tier.
    for scenario, btiers in base.get("dispatch", {}).items():
        ctiers = cur.get("dispatch", {}).get(scenario)
        if ctiers is None:
            failures.append(
                f"dispatch.{scenario}: missing from current results")
            continue
        for tier, b in btiers.items():
            c = ctiers.get(tier)
            name = f"dispatch.{scenario}.{tier}"
            if c is None:
                failures.append(f"{name}: missing from current results")
                continue
            bv = float(b["cycles_per_sec"])
            cv = float(c["cycles_per_sec"])
            ratio = cv / bv if bv > 0 else 0.0
            ok = ratio >= floor
            print(f"{name:32s} baseline {bv / 1e6:9.2f}M/s  "
                  f"current {cv / 1e6:9.2f}M/s  ratio {ratio:5.2f}  "
                  f"{'ok' if ok else 'REGRESSED'}")
            if not ok:
                failures.append(
                    f"{name}: {cv / 1e6:.2f}M/s is "
                    f"{(1 - ratio) * 100:.0f}% below baseline "
                    f"{bv / 1e6:.2f}M/s (tolerance "
                    f"{args.tolerance * 100:.0f}%)")

    if args.superblock_min_ratio is not None:
        tiers = cur.get("dispatch", {}).get("single_stream", {})
        sb = tiers.get("superblock")
        uop = tiers.get("uop")
        if not sb or not uop:
            failures.append("superblock-min-ratio: current file has no "
                            "dispatch.single_stream superblock/uop data")
        else:
            sv = float(sb["cycles_per_sec"])
            uv = float(uop["cycles_per_sec"])
            ratio = sv / uv if uv > 0 else 0.0
            ok = ratio >= args.superblock_min_ratio
            print(f"superblock/uop single_stream ratio {ratio:5.2f}  "
                  f"(floor {args.superblock_min_ratio:.2f})  "
                  f"{'ok' if ok else 'TOO LOW'}")
            if not ok:
                failures.append(
                    f"superblock single_stream is only {ratio:.2f}x the "
                    f"uop tier (floor "
                    f"{args.superblock_min_ratio:.2f}x)")

    if failures:
        print("\nFAIL:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nall scenarios within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
