#!/usr/bin/env python3
"""Compare a fresh throughput run against the committed baseline.

Usage: check_perf.py BASELINE.json CURRENT.json [--tolerance 0.25]

Reads two BENCH_throughput.json files (schema 4; schema 1/2/3
baselines still work for the sections they carry) and fails with exit
status 1 if any machine scenario's cycles_per_sec dropped by more
than the tolerance relative to the baseline. Schema-3 files also
carry a "dispatch" section (per execution tier: interp/uop/
superblock) and schema-4 files a "batch" section (lockstep
MachineBatch vs scalar at several batch widths); those scenarios are
compared the same way when both files have them. Improvements and
absolute cross-host differences never fail the check; the point is
to catch a change that makes the simulator dramatically slower, not
to pin the host.

--superblock-min-ratio R additionally asserts, on the CURRENT file
alone, that the superblock tier is at least R times the uop tier on
single_stream, and --batch-min-ratio R that batched execution at
width 16 is at least R times the scalar path — both within-run
ratios are host-speed-independent, so they are the absolute
performance promises CI can hold. Standard library only, so CI can
run it anywhere.

BENCH_serve.json files (schema "serve-2", written by disc-loadgen)
are recognised too: the current file's digest_check must be "ok",
every sweep must be fully accounted for (completed + busy == sent,
zero transport errors), and the migration drill must report zero
digest mismatches. --min-rps R and --min-migrations N add absolute
floors on the best sweep's throughput and on successful migrations;
when the baseline is also a serve file, the best sweep's throughput
is additionally held to the regression tolerance.
"""

import argparse
import json
import sys


def best_rps(data):
    """The highest sustained sweep throughput in a serve file."""
    return max((float(s.get("throughput_rps", 0.0))
                for s in data.get("sweeps", [])), default=0.0)


def check_serve(base, cur, args) -> int:
    """Gate a serve-2 BENCH_serve.json run; see the module docstring."""
    failures = []

    check = cur.get("digest_check")
    print(f"digest_check: {check}")
    if check != "ok":
        failures.append(f"digest_check is {check!r}, want 'ok'")

    mig = cur.get("migrations", {})
    attempted = int(mig.get("attempted", 0))
    ok = int(mig.get("ok", 0))
    mismatches = int(mig.get("digest_mismatches", 0))
    print(f"migrations: attempted {attempted}  ok {ok}  "
          f"mismatches {mismatches}")
    if mismatches:
        failures.append(f"{mismatches} migration digest mismatch(es)")
    if args.min_migrations is not None and ok < args.min_migrations:
        failures.append(f"only {ok} successful migrations "
                        f"(floor {args.min_migrations})")

    for s in cur.get("sweeps", []):
        sent = int(s.get("sent", 0))
        completed = int(s.get("completed", 0))
        busy = (int(s.get("busy_queue_full", 0)) +
                int(s.get("busy_deadline", 0)) +
                int(s.get("busy_draining", 0)))
        errors = int(s.get("errors", 0))
        rate = s.get("rate_rps")
        ok = errors == 0 and completed + busy == sent
        print(f"sweep {rate:>6} rps: sent {sent}  completed "
              f"{completed}  busy {busy}  errors {errors}  "
              f"{'ok' if ok else 'FAIL'}")
        if errors:
            failures.append(f"sweep {rate}: {errors} transport errors")
        if completed + busy != sent:
            failures.append(f"sweep {rate}: {sent - completed - busy} "
                            f"requests unaccounted for")

    rps = best_rps(cur)
    if args.min_rps is not None:
        ok = rps >= args.min_rps
        print(f"best sweep {rps:.1f} rps (floor {args.min_rps:.0f})  "
              f"{'ok' if ok else 'TOO LOW'}")
        if not ok:
            failures.append(f"best sweep {rps:.1f} rps is below the "
                            f"{args.min_rps:.0f} rps floor")

    if str(base.get("schema", "")).startswith("serve"):
        base_rps = best_rps(base)
        floor = (1.0 - args.tolerance) * base_rps
        ok = rps >= floor
        print(f"baseline best {base_rps:.1f} rps  current "
              f"{rps:.1f} rps  {'ok' if ok else 'REGRESSED'}")
        if not ok:
            failures.append(f"best sweep {rps:.1f} rps regressed "
                            f"below {floor:.1f} rps "
                            f"({args.tolerance * 100:.0f}% under "
                            f"baseline {base_rps:.1f})")

    if failures:
        print("\nFAIL:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nserve results clean")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(
        description="fail on >tolerance throughput regressions")
    ap.add_argument("baseline", help="committed BENCH_throughput.json")
    ap.add_argument("current", help="freshly produced results")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed fractional drop (default 0.25)")
    ap.add_argument("--superblock-min-ratio", type=float, default=None,
                    help="fail unless current dispatch.single_stream "
                         "superblock/uop cycles_per_sec >= this ratio")
    ap.add_argument("--batch-min-ratio", type=float, default=None,
                    help="fail unless the current batch sweep's "
                         "width-16 batched/scalar ratio >= this ratio")
    ap.add_argument("--min-rps", type=float, default=None,
                    help="serve files: fail unless the best sweep "
                         "sustained at least this many req/s")
    ap.add_argument("--min-migrations", type=int, default=None,
                    help="serve files: fail unless at least this many "
                         "migrations succeeded digest-clean")
    args = ap.parse_args()

    with open(args.baseline) as f:
        base = json.load(f)
    with open(args.current) as f:
        cur = json.load(f)

    if str(cur.get("schema", "")).startswith("serve"):
        return check_serve(base, cur, args)

    # Only compare schemas this script understands; a result file from
    # a newer tool is skipped rather than misread.
    known = (1, 2, 3, 4)
    for name, data in (("baseline", base), ("current", cur)):
        schema = data.get("schema")
        if schema not in known:
            print(f"skipping: {name} file has unknown schema "
                  f"{schema!r} (known: {known})")
            return 0

    floor = 1.0 - args.tolerance
    failures = []
    for scenario, b in base.get("machine", {}).items():
        c = cur.get("machine", {}).get(scenario)
        if c is None:
            failures.append(f"{scenario}: missing from current results")
            continue
        bv = float(b["cycles_per_sec"])
        cv = float(c["cycles_per_sec"])
        ratio = cv / bv if bv > 0 else 0.0
        ok = ratio >= floor
        print(f"{scenario:16s} baseline {bv / 1e6:9.2f}M/s  "
              f"current {cv / 1e6:9.2f}M/s  ratio {ratio:5.2f}  "
              f"{'ok' if ok else 'REGRESSED'}")
        if not ok:
            failures.append(
                f"{scenario}: {cv / 1e6:.2f}M/s is "
                f"{(1 - ratio) * 100:.0f}% below baseline "
                f"{bv / 1e6:.2f}M/s (tolerance "
                f"{args.tolerance * 100:.0f}%)")

    # Schema-3 dispatch section: same regression rule per tier.
    for scenario, btiers in base.get("dispatch", {}).items():
        ctiers = cur.get("dispatch", {}).get(scenario)
        if ctiers is None:
            failures.append(
                f"dispatch.{scenario}: missing from current results")
            continue
        for tier, b in btiers.items():
            c = ctiers.get(tier)
            name = f"dispatch.{scenario}.{tier}"
            if c is None:
                failures.append(f"{name}: missing from current results")
                continue
            bv = float(b["cycles_per_sec"])
            cv = float(c["cycles_per_sec"])
            ratio = cv / bv if bv > 0 else 0.0
            ok = ratio >= floor
            print(f"{name:32s} baseline {bv / 1e6:9.2f}M/s  "
                  f"current {cv / 1e6:9.2f}M/s  ratio {ratio:5.2f}  "
                  f"{'ok' if ok else 'REGRESSED'}")
            if not ok:
                failures.append(
                    f"{name}: {cv / 1e6:.2f}M/s is "
                    f"{(1 - ratio) * 100:.0f}% below baseline "
                    f"{bv / 1e6:.2f}M/s (tolerance "
                    f"{args.tolerance * 100:.0f}%)")

    # Schema-4 batch section: regression rule on the batched rate per
    # width when both files carry the sweep.
    base_widths = {int(w.get("width", 0)): w
                   for w in base.get("batch", {}).get("widths", [])}
    cur_widths = {int(w.get("width", 0)): w
                  for w in cur.get("batch", {}).get("widths", [])}
    for width, b in sorted(base_widths.items()):
        c = cur_widths.get(width)
        name = f"batch.width{width}"
        if c is None:
            failures.append(f"{name}: missing from current results")
            continue
        bv = float(b["batched_cycles_per_sec"])
        cv = float(c["batched_cycles_per_sec"])
        ratio = cv / bv if bv > 0 else 0.0
        ok = ratio >= floor
        print(f"{name:32s} baseline {bv / 1e6:9.2f}M/s  "
              f"current {cv / 1e6:9.2f}M/s  ratio {ratio:5.2f}  "
              f"{'ok' if ok else 'REGRESSED'}")
        if not ok:
            failures.append(
                f"{name}: {cv / 1e6:.2f}M/s is "
                f"{(1 - ratio) * 100:.0f}% below baseline "
                f"{bv / 1e6:.2f}M/s (tolerance "
                f"{args.tolerance * 100:.0f}%)")

    if args.batch_min_ratio is not None:
        c = cur_widths.get(16)
        if c is None:
            failures.append("batch-min-ratio: current file has no "
                            "batch sweep point at width 16")
        else:
            ratio = float(c.get("ratio", 0.0))
            ok = ratio >= args.batch_min_ratio
            print(f"batch/scalar width-16 ratio {ratio:5.2f}  "
                  f"(floor {args.batch_min_ratio:.2f})  "
                  f"{'ok' if ok else 'TOO LOW'}")
            if not ok:
                failures.append(
                    f"batched execution at width 16 is only "
                    f"{ratio:.2f}x the scalar path (floor "
                    f"{args.batch_min_ratio:.2f}x)")

    if args.superblock_min_ratio is not None:
        tiers = cur.get("dispatch", {}).get("single_stream", {})
        sb = tiers.get("superblock")
        uop = tiers.get("uop")
        if not sb or not uop:
            failures.append("superblock-min-ratio: current file has no "
                            "dispatch.single_stream superblock/uop data")
        else:
            sv = float(sb["cycles_per_sec"])
            uv = float(uop["cycles_per_sec"])
            ratio = sv / uv if uv > 0 else 0.0
            ok = ratio >= args.superblock_min_ratio
            print(f"superblock/uop single_stream ratio {ratio:5.2f}  "
                  f"(floor {args.superblock_min_ratio:.2f})  "
                  f"{'ok' if ok else 'TOO LOW'}")
            if not ok:
                failures.append(
                    f"superblock single_stream is only {ratio:.2f}x the "
                    f"uop tier (floor "
                    f"{args.superblock_min_ratio:.2f}x)")

    if failures:
        print("\nFAIL:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nall scenarios within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
