/**
 * @file
 * disc-run: assemble and execute a DISC1 assembly file from the
 * command line.
 *
 * Usage:
 *   disc-run FILE.s [options]
 *     --entry LABEL        start stream 0 at LABEL (default: "main",
 *                          falling back to address 0)
 *     --stream S:LABEL     also start stream S at LABEL (repeatable)
 *     --cycles N           cycle budget (default 1000000)
 *     --free-run           do not stop when the machine goes idle
 *     --board FILE         compose devices from a board spec file
 *                          (docs/BOARDS.md); `start` lines launch
 *                          extra streams
 *     --extmem BASE:SIZE:LAT  attach an external memory device
 *                          (sugar for a board `device extmem` line)
 *     --trace              print the retired-instruction trace
 *     --pipe               print the last 32 cycles of pipe occupancy
 *     --list               print the disassembly listing and exit
 *     --vcd FILE           write a VCD waveform of machine activity
 *     --dump ADDR[:N]      dump N internal-memory words (default 8)
 *     --digest             print the run digest (checkpoint + trace
 *                          fingerprint; comparable with disc-serve)
 *     --no-superblock      disable the superblock execution tier
 *                          (per-cycle/uop path only; same effect as
 *                          DISC_NO_SUPERBLOCK=1)
 *
 * Exit status: 0 on success, 1 on assembly/usage errors.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "arch/devices.hh"
#include "board/board.hh"
#include "common/logging.hh"
#include "isa/assembler.hh"
#include "sim/digest.hh"
#include "sim/machine.hh"
#include "sim/trace.hh"
#include "sim/vcd.hh"

using namespace disc;

namespace
{

std::string
readFile(const char *path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open '%s'", path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

struct StreamStart
{
    StreamId stream;
    std::string label;
};

struct ExtMemSpec
{
    Addr base;
    Addr size;
    unsigned latency;
};

} // namespace

int
main(int argc, char **argv)
{
    try {
        if (argc < 2)
            fatal("usage: disc-run FILE.s [options]");
        const char *path = argv[1];
        std::string entry = "main";
        std::vector<StreamStart> extra;
        std::vector<ExtMemSpec> extmems;
        const char *board_path = nullptr;
        Cycle budget = 1000000;
        bool free_run = false;
        bool want_trace = false, want_pipe = false, want_list = false;
        bool want_digest = false;
        bool no_superblock = false;
        const char *vcd_path = nullptr;
        std::vector<std::pair<Addr, unsigned>> dumps;

        for (int i = 2; i < argc; ++i) {
            const char *a = argv[i];
            auto value = [&]() -> const char * {
                if (i + 1 >= argc)
                    fatal("option %s needs a value", a);
                return argv[++i];
            };
            if (!std::strcmp(a, "--entry")) {
                entry = value();
            } else if (!std::strcmp(a, "--stream")) {
                const char *v = value();
                const char *colon = std::strchr(v, ':');
                if (!colon)
                    fatal("--stream wants S:LABEL");
                extra.push_back(
                    {static_cast<StreamId>(std::atoi(v)), colon + 1});
            } else if (!std::strcmp(a, "--cycles")) {
                budget = std::strtoull(value(), nullptr, 0);
            } else if (!std::strcmp(a, "--free-run")) {
                free_run = true;
            } else if (!std::strcmp(a, "--board")) {
                board_path = value();
            } else if (!std::strcmp(a, "--extmem")) {
                const char *v = value();
                unsigned base, size, lat;
                if (std::sscanf(v, "%i:%i:%i", &base, &size, &lat) != 3)
                    fatal("--extmem wants BASE:SIZE:LAT");
                extmems.push_back({static_cast<Addr>(base),
                                   static_cast<Addr>(size), lat});
            } else if (!std::strcmp(a, "--trace")) {
                want_trace = true;
            } else if (!std::strcmp(a, "--digest")) {
                want_digest = true;
            } else if (!std::strcmp(a, "--no-superblock")) {
                no_superblock = true;
            } else if (!std::strcmp(a, "--pipe")) {
                want_pipe = true;
            } else if (!std::strcmp(a, "--list")) {
                want_list = true;
            } else if (!std::strcmp(a, "--vcd")) {
                vcd_path = value();
            } else if (!std::strcmp(a, "--dump")) {
                const char *v = value();
                unsigned addr, n = 8;
                if (std::sscanf(v, "%i:%i", &addr, &n) < 1)
                    fatal("--dump wants ADDR[:N]");
                dumps.emplace_back(static_cast<Addr>(addr), n);
            } else {
                fatal("unknown option '%s'", a);
            }
        }

        Program prog = assemble(readFile(path));
        if (want_list) {
            std::fputs(disassemble(prog).c_str(), stdout);
            return 0;
        }

        Machine m;
        // One construction path: the board file plus the --extmem
        // sugar lines feed the board parser/registry (disc-serve
        // composes open requests the same way, so digests line up).
        std::string board_text =
            board_path ? readFile(board_path) : std::string();
        for (std::size_t i = 0; i < extmems.size(); ++i)
            board_text += extmemSugarLine(static_cast<unsigned>(i),
                                          extmems[i].base,
                                          extmems[i].size,
                                          extmems[i].latency);
        Board board = buildBoard(parseBoardSpec(
            board_text, board_path ? board_path : "<args>"));
        board.attachTo(m);
        m.load(prog);
        if (no_superblock)
            m.setSuperblockExec(false);

        ExecTrace etrace(65536);
        PipeTrace ptrace(m.pipeDepth(), 32);
        // The digest folds in the trace text, so --digest records the
        // trace too (disc-serve sessions always trace).
        if (want_trace || want_digest)
            m.setExecTrace(&etrace);
        if (want_pipe)
            m.setTrace(&ptrace);

        PAddr entry_addr =
            prog.hasSymbol(entry) ? prog.symbol(entry) : 0;
        m.startStream(0, entry_addr);
        board.startStreams(m, prog);
        for (const StreamStart &s : extra)
            m.startStream(s.stream, prog.symbol(s.label));

        Cycle ran;
        auto wall_start = std::chrono::steady_clock::now();
        if (vcd_path) {
            VcdWriter vcd;
            for (ran = 0; ran < budget; ++ran) {
                if (!free_run && m.idle())
                    break;
                m.step();
                vcd.sample(m);
            }
            std::ofstream out(vcd_path);
            if (!out)
                fatal("cannot write '%s'", vcd_path);
            out << vcd.text();
            std::printf("wrote %s (%llu samples)\n", vcd_path,
                        static_cast<unsigned long long>(vcd.samples()));
        } else {
            ran = m.run(budget, !free_run);
        }
        double wall_sec = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() -
                              wall_start)
                              .count();

        const MachineStats &st = m.stats();
        // Simulated MIPS: retired instructions per wall-clock second.
        double mips = wall_sec > 0 ? static_cast<double>(st.totalRetired) /
                                         wall_sec / 1e6
                                   : 0;
        std::printf("cycles=%llu idle=%s retired=%llu util=%.3f "
                    "redirects=%llu bubbles=%llu fastforwarded=%llu "
                    "mips=%.2f\n",
                    static_cast<unsigned long long>(ran),
                    m.idle() ? "yes" : "no",
                    static_cast<unsigned long long>(st.totalRetired),
                    st.utilization(),
                    static_cast<unsigned long long>(st.redirects),
                    static_cast<unsigned long long>(st.bubbles),
                    static_cast<unsigned long long>(
                        st.fastForwardedCycles),
                    mips);
        if (st.superblockEnters > 0) {
            std::printf("  superblock: cycles=%llu enters=%llu bails=[",
                        static_cast<unsigned long long>(
                            st.superblockCycles),
                        static_cast<unsigned long long>(
                            st.superblockEnters));
            for (unsigned b = 0; b < kNumSbBails; ++b)
                std::printf("%s%s=%llu", b ? " " : "",
                            sbBailName(static_cast<SbBail>(b)),
                            static_cast<unsigned long long>(
                                st.superblockBails[b]));
            std::printf("]\n");
        }
        for (StreamId s = 0; s < kNumStreams; ++s) {
            if (st.retired[s] == 0)
                continue;
            // Per-stream cycle breakdown: ready to issue, parked on
            // the external bus, or inactive (the three tallies sum to
            // the cycle count).
            std::printf("  is%u: retired=%llu pc=0x%04x ready=%llu "
                        "wait-abi=%llu inactive=%llu\n",
                        s + 1,
                        static_cast<unsigned long long>(st.retired[s]),
                        m.pc(s),
                        static_cast<unsigned long long>(st.readyCycles[s]),
                        static_cast<unsigned long long>(
                            st.waitAbiCycles[s]),
                        static_cast<unsigned long long>(
                            st.inactiveCycles[s]));
        }
        for (auto [addr, n] : dumps) {
            std::printf("mem[0x%03x]:", addr);
            for (unsigned k = 0; k < n; ++k)
                std::printf(" %04x",
                            m.internalMemory().read(
                                static_cast<Addr>(addr + k)));
            std::printf("\n");
        }
        if (want_digest)
            std::printf("digest=%016llx\n",
                        static_cast<unsigned long long>(
                            runDigest(m, etrace)));
        if (want_trace)
            std::fputs(etrace.render().c_str(), stdout);
        if (want_pipe)
            std::fputs(ptrace.render().c_str(), stdout);
        return 0;
    } catch (const FatalError &) {
        return 1;
    }
}
