/**
 * @file
 * disc-fuzz: coverage-guided differential fuzzer for the DISC1
 * pipeline model.
 *
 * Each fuzz case is a (seed, options) pair fed to the multi-stream
 * workload generator; the resulting program runs on the pipelined
 * Machine under the invariant checker and is then compared, stream by
 * stream, against the sequential golden model. Cases with the batch
 * axis set additionally replay the same program through a MachineBatch
 * lane (no observer, so the lockstep hot lane can engage) and demand a
 * checkpoint bit-identical to the observed scalar run. Cases with the
 * board axis set (boardseed != 0) additionally compose a generated
 * board spec — a random selection of registry device types with random
 * parameters and interrupt wiring — plus a driver program that sweeps
 * the device windows, then demand that a fully accelerated run ends
 * checkpoint-identical to a plain scalar run of the same board and
 * that the checkpoint save/restore round-trips byte-exactly. Coverage
 * is the set of (opcode x pipeline event x active-stream-count) points
 * the run touched, plus one point per superblock bail reason, one per
 * batch peel reason, and one per board device type the case composed;
 * cases that reach new points join the corpus and later cases mutate
 * corpus entries instead of starting fresh.
 *
 * Usage:
 *   disc-fuzz [options]
 *     --seeds N         number of fuzz cases to run (default 100)
 *     --base-seed S     first seed value (default 1)
 *     --out DIR         where to write repro files (default ".")
 *     --max-cycles N    override the per-case cycle budget
 *     --defect NAME     seed a known machine defect; NAME is
 *                       "low-priority-vector"
 *     --expect-failure  exit 0 iff at least one failure was found
 *                       (for exercising the defect path in CI)
 *     --replay FILE     re-run one repro file and report the outcome
 *
 * On failure the case is shrunk — fewer streams, features dropped,
 * shorter body — while the failure persists, and the minimal repro is
 * written to DIR/repro-<seed>.txt as replayable key=value lines with
 * the failure and disassembly attached as comments.
 *
 * Exit status: 0 when no failures were found (or, under
 * --expect-failure, when one was); 1 otherwise. --replay exits 1 when
 * the failure reproduces.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "board/board.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "isa/assembler.hh"
#include "sim/batch.hh"
#include "verify/differential.hh"
#include "verify/invariants.hh"

using namespace disc;

namespace
{

struct FuzzCase
{
    std::uint64_t seed = 1;
    GenOptions opts;
    bool defect = false;
    /** Run with the event-skip fast-forward enabled (coverage axis). */
    bool fastForward = true;
    /** Run through the micro-op dispatch tables (coverage axis). */
    bool useUops = true;
    /** Run with the superblock translation tier (coverage axis). */
    bool useSuperblock = true;
    /** Replay through a MachineBatch lane and diff (coverage axis). */
    bool useBatch = false;
    /** Board axis: when nonzero, also run a generated board case. */
    std::uint64_t boardSeed = 0;
    /** Enabled optional device slots of the generated board (4 bits). */
    unsigned boardMask = 0;
};

struct RunResult
{
    bool failed = false;
    std::string detail;
};

Cycle g_max_cycles = 0;

/** Fixed free-run horizon for board cases (independent of the per-case
 *  differential budget, so board repros don't depend on --max-cycles). */
constexpr Cycle kBoardBudget = 4000;

/** A generated board case: spec text plus the driver program. */
struct BoardCaseText
{
    std::string board;
    std::string driver;
};

/**
 * Generate a board spec and its driver program, both pure functions of
 * (boardSeed, boardMask). Slot 0 is always an extmem named d0 (it
 * anchors the address map and gives dma devices a target); mask bits
 * 0..3 enable four more slots whose types, parameters and interrupt
 * wiring are drawn from the seed. The driver installs a vector-table
 * entry and a counting handler for every interrupt line the board
 * uses, sweeps each device's register window with random reads and
 * writes, spins briefly so in-flight interrupts preempt live code,
 * and halts — device events keep arriving after the halt, so the run
 * also exercises interrupt wake-from-idle under the fixed horizon.
 */
BoardCaseText
generateBoardCase(std::uint64_t board_seed, unsigned board_mask)
{
    Rng rng(board_seed * 0x2545f4914f6cdd1dULL + 0xb0a2d);
    const std::vector<std::string> types =
        DeviceRegistry::builtin().types();

    std::ostringstream board;
    std::vector<IntRequest> irqs;
    std::set<unsigned> irq_keys;
    auto irqParam = [&](const char *key) {
        unsigned s = static_cast<unsigned>(rng.below(kNumStreams));
        unsigned b = 1 + static_cast<unsigned>(rng.below(6));
        if (irq_keys.insert(s * 8 + b).second)
            irqs.push_back({static_cast<StreamId>(s), b});
        return strprintf(" %s=%u:%u", key, s, b);
    };

    board << "# generated by disc-fuzz (boardseed=" << board_seed
          << " boardmask=" << board_mask << ")\n";
    board << "device extmem d0 base=0x2000 size=64 latency="
          << rng.below(4) << "\n";

    // (base, register-window span the driver may touch)
    std::vector<std::pair<Addr, unsigned>> windows{{0x2000, 48}};
    for (unsigned slot = 0; slot < 4; ++slot) {
        if (!(board_mask & (1u << slot)))
            continue;
        Addr base = static_cast<Addr>(0x2100 + slot * 0x100);
        const std::string &t = types[rng.below(types.size())];
        board << "device " << t << " d" << (slot + 1)
              << strprintf(" base=0x%04x", base);
        if (t == "extmem") {
            board << " size=32 latency=" << rng.below(4);
        } else if (t == "sensor") {
            board << " size=4 period=" << 3 + rng.below(40)
                  << " latency=" << rng.below(3);
            if (rng.chance(0.75))
                board << irqParam("irq");
        } else if (t == "actuator") {
            board << " size=4 latency=" << rng.below(3);
        } else if (t == "timer") {
            board << " size=4 period=" << 5 + rng.below(50)
                  << irqParam("irq");
        } else if (t == "uart") {
            board << " size=4 period=" << 4 + rng.below(30)
                  << " latency=" << rng.below(3) << " rx=";
            unsigned n = 1 + static_cast<unsigned>(rng.below(4));
            for (unsigned i = 0; i < n; ++i)
                board << (i ? "," : "") << rng.below(0x10000);
            if (rng.chance(0.75))
                board << irqParam("irq");
        } else if (t == "dma") {
            board << " size=8 target=d0 cpw=" << 1 + rng.below(3);
            if (rng.chance(0.75))
                board << irqParam("irq");
        } else if (t == "watchdog") {
            board << " size=4 timeout=" << 20 + rng.below(200)
                  << " grace=" << 5 + rng.below(40) << " latency="
                  << rng.below(3);
            if (rng.chance(0.75))
                board << irqParam("irq");
        } else if (t == "gpio") {
            board << " size=4 period=" << 4 + rng.below(40)
                  << " pattern=";
            unsigned n = 2 + static_cast<unsigned>(rng.below(5));
            for (unsigned i = 0; i < n; ++i)
                board << (i ? "," : "") << rng.below(4);
            static const char *const edges[] = {"rise", "fall", "any"};
            board << " edge=" << edges[rng.below(3)] << " latency="
                  << rng.below(3);
            if (rng.chance(0.75))
                board << irqParam("irq");
        } else if (t == "mailbox") {
            board << " size=4 depth=" << 1 + rng.below(4)
                  << " delay=" << 1 + rng.below(4) << " latency="
                  << rng.below(3);
            if (rng.chance(0.75))
                board << irqParam("irq");
        } else {
            fatal("board fuzz generator does not know type '%s'",
                  t.c_str());
        }
        board << "\n";
        windows.push_back({base, 4});
    }

    std::ostringstream drv;
    drv << "; disc-fuzz board driver (boardseed=" << board_seed
        << " boardmask=" << board_mask << ")\n";
    for (const IntRequest &q : irqs)
        drv << strprintf(".org %u\n    jmp h_%u_%u\n",
                         static_cast<unsigned>(q.stream) * 8 + q.bit,
                         static_cast<unsigned>(q.stream), q.bit);
    drv << ".org 0x40\nmain:\n";
    for (const auto &w : windows) {
        drv << strprintf("    ldi  g1, 0x%02x\n",
                         static_cast<unsigned>(w.first) & 0xff);
        drv << strprintf("    ldih g1, 0x%02x\n",
                         static_cast<unsigned>(w.first) >> 8);
        unsigned ops = 2 + static_cast<unsigned>(rng.below(5));
        for (unsigned i = 0; i < ops; ++i) {
            unsigned off = static_cast<unsigned>(rng.below(w.second));
            if (rng.chance(0.5)) {
                drv << strprintf("    ldi  r1, %u\n",
                                 static_cast<unsigned>(rng.below(0x100)));
                drv << strprintf("    st   r1, [g1+%u]\n", off);
            } else {
                drv << strprintf("    ld   r2, [g1+%u]\n", off);
            }
        }
    }
    drv << strprintf("    ldi  r3, %u\n",
                     8 + static_cast<unsigned>(rng.below(24)));
    drv << "spin:\n"
           "    addi r3, r3, -1\n"
           "    cmpi r3, 0\n"
           "    bne  spin\n"
           "    halt\n";
    unsigned idx = 0;
    for (const IntRequest &q : irqs) {
        drv << strprintf("h_%u_%u:\n",
                         static_cast<unsigned>(q.stream), q.bit);
        drv << strprintf("    ldmd r6, [0x%02x]\n", 0x60 + idx);
        drv << "    addi r6, r6, 1\n";
        drv << strprintf("    stmd r6, [0x%02x]\n", 0x60 + idx);
        drv << strprintf("    clri %u\n", q.bit);
        drv << "    reti\n";
        ++idx;
    }
    return {board.str(), drv.str()};
}

/**
 * Run a case's board axis: a plain scalar run of the generated board
 * is the baseline; a run through the case's acceleration flags (and a
 * MachineBatch lane when the batch axis is set) must end
 * checkpoint-identical, and the baseline checkpoint must survive a
 * save/restore round-trip byte-exactly.
 */
RunResult
runBoardCase(const FuzzCase &c, CoverageMap *cov)
{
    BoardCaseText bc = generateBoardCase(c.boardSeed, c.boardMask);
    BoardSpec spec = parseBoardSpec(bc.board, "<fuzz-board>");
    if (cov) {
        for (const BoardDeviceSpec &d : spec.devices)
            cov->recordBoardDevice(
                DeviceRegistry::builtin().typeIndex(d.type));
    }
    Program prog = assemble(bc.driver);

    auto runOne = [&](const MachineConfig &mc, bool batch) {
        Machine m(mc);
        Board board = buildBoard(spec);
        board.attachTo(m);
        m.load(prog);
        m.startStream(0, prog.symbol("main"));
        if (batch) {
            MachineBatch mb(1);
            mb.add(&m);
            mb.run(kBoardBudget, false);
        } else {
            m.run(kBoardBudget, false);
        }
        if (cov && mc.superblockExec) {
            const MachineStats &st = m.stats();
            for (unsigned b = 0; b < kNumSbBails; ++b)
                if (st.superblockBails[b] > 0)
                    cov->recordBail(static_cast<SbBail>(b));
        }
        return m.saveState();
    };

    MachineConfig scalar;
    scalar.fastForward = false;
    scalar.uopDispatch = false;
    scalar.superblockExec = false;
    std::vector<std::uint8_t> base = runOne(scalar, false);

    MachineConfig accel;
    accel.fastForward = c.fastForward;
    accel.uopDispatch = c.useUops;
    accel.superblockExec = c.useSuperblock;
    std::vector<std::uint8_t> fast = runOne(accel, c.useBatch);

    RunResult res;
    if (fast != base) {
        res.failed = true;
        res.detail += strprintf(
            "board case: accelerated run (ff=%d uops=%d sb=%d "
            "batch=%d) diverged from scalar stepping "
            "(checkpoint mismatch)\n",
            c.fastForward ? 1 : 0, c.useUops ? 1 : 0,
            c.useSuperblock ? 1 : 0, c.useBatch ? 1 : 0);
    }

    // Save/restore round-trip through the checkpoint-v3 board header.
    Machine rm(scalar);
    Board rboard = buildBoard(spec);
    rboard.attachTo(rm);
    rm.load(prog);
    rm.restoreState(base);
    if (rm.saveState() != base) {
        res.failed = true;
        res.detail += "board case: checkpoint save/restore round-trip "
                      "is not byte-identical\n";
    }
    return res;
}

RunResult
runCase(const FuzzCase &c, CoverageMap *cov)
{
    MultiStreamProgram msp = generateMultiStream(c.seed, c.opts);
    MachineConfig cfg;
    cfg.fastForward = c.fastForward;
    cfg.uopDispatch = c.useUops;
    cfg.superblockExec = c.useSuperblock;
    MachineRig rig(msp, cfg);
    if (c.defect)
        rig.machine().interrupts().setDefectLowPriorityVector(true);

    InvariantChecker chk(rig.machine());
    if (cov)
        chk.setCoverage(cov);
    rig.machine().setObserver(&chk);
    rig.start();
    rig.machine().run(g_max_cycles ? g_max_cycles : rig.cycleBudget());

    if (cov) {
        const MachineStats &st = rig.machine().stats();
        for (unsigned b = 0; b < kNumSbBails; ++b)
            if (st.superblockBails[b] > 0)
                cov->recordBail(static_cast<SbBail>(b));
    }

    DiffOutcome out;
    out.machineIdle = rig.machine().idle();
    out.divergences = compareWithReference(rig);

    RunResult res;
    res.failed = !out.ok() || !chk.ok();
    if (res.failed)
        res.detail = out.summary() + chk.report();

    if (c.useBatch) {
        // Replay without an observer so the lockstep hot lane can
        // engage; the batched machine's checkpoint must reproduce the
        // observed scalar run's bit for bit.
        MachineRig brig(msp, cfg);
        if (c.defect)
            brig.machine().interrupts().setDefectLowPriorityVector(
                true);
        brig.start();
        MachineBatch mb(1);
        mb.add(&brig.machine());
        mb.run(g_max_cycles ? g_max_cycles : brig.cycleBudget());
        if (cov) {
            const BatchStats &bs = mb.stats();
            for (unsigned p = 0; p < kNumBatchPeels; ++p)
                if (bs.peels[p] > 0)
                    cov->recordPeel(static_cast<BatchPeel>(p));
        }
        if (brig.machine().saveState() != rig.machine().saveState()) {
            res.failed = true;
            res.detail +=
                "batched execution diverged from scalar stepping "
                "(checkpoint mismatch)\n";
        }
    }

    if (c.boardSeed != 0) {
        RunResult br = runBoardCase(c, cov);
        if (br.failed) {
            res.failed = true;
            res.detail += br.detail;
        }
    }
    return res;
}

bool
stillFails(const FuzzCase &c)
{
    return runCase(c, nullptr).failed;
}

/** Body size of a case's program, excluding the vector table. */
std::size_t
caseInstructions(const FuzzCase &c)
{
    return generateMultiStream(c.seed, c.opts).program.code.size() -
           kVectorTableEnd;
}

/**
 * Greedy shrink: every reduction step regenerates the whole program
 * (cases are pure functions of seed+options) and is kept only while
 * the failure persists.
 */
FuzzCase
shrinkCase(FuzzCase c)
{
    if (c.boardSeed != 0) {
        // Prefer a repro without the board axis; when the failure
        // needs the board, drop optional device slots one at a time.
        FuzzCase t = c;
        t.boardSeed = 0;
        t.boardMask = 0;
        if (stillFails(t)) {
            c = t;
        } else {
            for (unsigned bit = 0; bit < 4; ++bit) {
                if (!(c.boardMask & (1u << bit)))
                    continue;
                FuzzCase t2 = c;
                t2.boardMask &= ~(1u << bit);
                if (stillFails(t2))
                    c = t2;
            }
        }
    }
    while (c.opts.streams > 1) {
        FuzzCase t = c;
        --t.opts.streams;
        if (!stillFails(t))
            break;
        c = t;
    }
    for (bool GenOptions::*feature :
         {&GenOptions::useDevices, &GenOptions::useInterrupts}) {
        if (c.opts.*feature) {
            FuzzCase t = c;
            t.opts.*feature = false;
            if (stillFails(t))
                c = t;
        }
    }
    if (c.useBatch) {
        // Prefer a repro that fails on the scalar path alone, without
        // the batched replay.
        FuzzCase t = c;
        t.useBatch = false;
        if (stillFails(t))
            c = t;
    }
    if (c.fastForward) {
        // Prefer a repro that fails in plain per-cycle stepping too.
        FuzzCase t = c;
        t.fastForward = false;
        if (stillFails(t))
            c = t;
    }
    if (c.useSuperblock) {
        // Prefer a repro that fails in the plain per-cycle uop path:
        // drop the superblock tier before touching the uop tables,
        // since disabling the tables disables the tier too.
        FuzzCase t = c;
        t.useSuperblock = false;
        if (stillFails(t))
            c = t;
    }
    if (c.useUops) {
        // Likewise prefer one that fails through the legacy switch.
        FuzzCase t = c;
        t.useUops = false;
        if (stillFails(t))
            c = t;
    }
    bool progress = true;
    while (progress && c.opts.length > 1) {
        progress = false;
        for (unsigned cand :
             {c.opts.length / 2, c.opts.length - 1}) {
            if (cand < 1 || cand >= c.opts.length)
                continue;
            FuzzCase t = c;
            t.opts.length = cand;
            if (stillFails(t)) {
                c = t;
                progress = true;
                break;
            }
        }
    }
    return c;
}

std::string
reproText(const FuzzCase &c, const std::string &detail)
{
    MultiStreamProgram msp = generateMultiStream(c.seed, c.opts);
    std::ostringstream out;
    out << "# disc-fuzz repro (replay with: disc-fuzz --replay FILE)\n";
    out << "seed=" << c.seed << "\n";
    out << "streams=" << c.opts.streams << "\n";
    out << "length=" << c.opts.length << "\n";
    out << "interrupts=" << (c.opts.useInterrupts ? 1 : 0) << "\n";
    out << "devices=" << (c.opts.useDevices ? 1 : 0) << "\n";
    out << "latency=" << c.opts.deviceLatency << "\n";
    out << "defect=" << (c.defect ? 1 : 0) << "\n";
    out << "fastforward=" << (c.fastForward ? 1 : 0) << "\n";
    out << "uops=" << (c.useUops ? 1 : 0) << "\n";
    out << "superblock=" << (c.useSuperblock ? 1 : 0) << "\n";
    out << "batch=" << (c.useBatch ? 1 : 0) << "\n";
    out << "boardseed=" << c.boardSeed << "\n";
    out << "boardmask=" << c.boardMask << "\n";
    out << "# instructions="
        << msp.program.code.size() - kVectorTableEnd << "\n";
    out << "# failure:\n";
    std::istringstream lines(detail);
    for (std::string line; std::getline(lines, line);)
        out << "#   " << line << "\n";
    if (c.boardSeed != 0) {
        BoardCaseText bc = generateBoardCase(c.boardSeed, c.boardMask);
        out << "# board spec:\n";
        std::istringstream blines(bc.board);
        for (std::string line; std::getline(blines, line);)
            out << "#   " << line << "\n";
        out << "# board driver:\n";
        std::istringstream dlines(bc.driver);
        for (std::string line; std::getline(dlines, line);)
            out << "#   " << line << "\n";
    }
    out << "# disassembly:\n";
    std::istringstream dis(disassemble(msp.program));
    for (std::string line; std::getline(dis, line);)
        out << "#   " << line << "\n";
    return out.str();
}

FuzzCase
parseRepro(const char *path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open '%s'", path);
    FuzzCase c;
    for (std::string line; std::getline(in, line);) {
        if (line.empty() || line[0] == '#')
            continue;
        std::size_t eq = line.find('=');
        if (eq == std::string::npos)
            fatal("bad repro line '%s'", line.c_str());
        std::string key = line.substr(0, eq);
        std::uint64_t val =
            std::strtoull(line.c_str() + eq + 1, nullptr, 0);
        if (key == "seed")
            c.seed = val;
        else if (key == "streams")
            c.opts.streams = static_cast<unsigned>(val);
        else if (key == "length")
            c.opts.length = static_cast<unsigned>(val);
        else if (key == "interrupts")
            c.opts.useInterrupts = val != 0;
        else if (key == "devices")
            c.opts.useDevices = val != 0;
        else if (key == "latency")
            c.opts.deviceLatency = static_cast<unsigned>(val);
        else if (key == "defect")
            c.defect = val != 0;
        else if (key == "fastforward")
            c.fastForward = val != 0;
        else if (key == "uops")
            c.useUops = val != 0;
        else if (key == "superblock")
            c.useSuperblock = val != 0;
        else if (key == "batch")
            c.useBatch = val != 0;
        else if (key == "boardseed")
            c.boardSeed = val;
        else if (key == "boardmask")
            c.boardMask = static_cast<unsigned>(val);
        else
            fatal("unknown repro key '%s'", key.c_str());
    }
    return c;
}

/** Derive deterministic option variation for a fresh seed. */
FuzzCase
freshCase(std::uint64_t seed, bool defect)
{
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
    FuzzCase c;
    c.seed = seed;
    c.defect = defect;
    c.opts.streams = 1 + static_cast<unsigned>(rng.below(kNumStreams));
    c.opts.length = 5 + static_cast<unsigned>(rng.below(200));
    c.opts.useInterrupts = !rng.chance(0.15);
    c.opts.useDevices = !rng.chance(0.15);
    c.opts.deviceLatency = static_cast<unsigned>(rng.below(7));
    c.fastForward = !rng.chance(0.25);
    c.useUops = !rng.chance(0.25);
    c.useSuperblock = !rng.chance(0.25);
    c.useBatch = !rng.chance(0.25);
    if (rng.chance(0.25)) {
        c.boardSeed = rng.next64() | 1;
        c.boardMask = static_cast<unsigned>(rng.below(16));
    }
    return c;
}

/** Mutate a corpus entry: jitter one knob, keep the rest. */
FuzzCase
mutateCase(const FuzzCase &base, Rng &rng)
{
    FuzzCase c = base;
    switch (rng.below(10)) {
      case 0:
        c.seed = rng.next64();
        break;
      case 1:
        c.opts.streams =
            1 + static_cast<unsigned>(rng.below(kNumStreams));
        break;
      case 2:
        c.opts.length =
            1 + static_cast<unsigned>(rng.below(220));
        break;
      case 3:
        c.opts.deviceLatency = static_cast<unsigned>(rng.below(7));
        break;
      case 4:
        c.fastForward = !c.fastForward;
        break;
      case 5:
        c.useUops = !c.useUops;
        break;
      case 6:
        c.useSuperblock = !c.useSuperblock;
        break;
      case 7:
        c.useBatch = !c.useBatch;
        break;
      case 8:
        if (c.boardSeed == 0) {
            c.boardSeed = rng.next64() | 1;
            c.boardMask = static_cast<unsigned>(rng.below(16));
        } else if (rng.chance(0.5)) {
            c.boardMask = static_cast<unsigned>(rng.below(16));
        } else {
            c.boardSeed = 0;
            c.boardMask = 0;
        }
        break;
      default:
        c.opts.useInterrupts = !c.opts.useInterrupts;
        break;
    }
    return c;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        unsigned seeds = 100;
        std::uint64_t base_seed = 1;
        const char *out_dir = ".";
        const char *replay = nullptr;
        bool defect = false;
        bool expect_failure = false;

        for (int i = 1; i < argc; ++i) {
            const char *a = argv[i];
            auto value = [&]() -> const char * {
                if (i + 1 >= argc)
                    fatal("option %s needs a value", a);
                return argv[++i];
            };
            if (!std::strcmp(a, "--seeds")) {
                seeds = static_cast<unsigned>(
                    std::strtoul(value(), nullptr, 0));
            } else if (!std::strcmp(a, "--base-seed")) {
                base_seed = std::strtoull(value(), nullptr, 0);
            } else if (!std::strcmp(a, "--out")) {
                out_dir = value();
            } else if (!std::strcmp(a, "--max-cycles")) {
                g_max_cycles = std::strtoull(value(), nullptr, 0);
            } else if (!std::strcmp(a, "--defect")) {
                const char *name = value();
                if (std::strcmp(name, "low-priority-vector"))
                    fatal("unknown defect '%s'", name);
                defect = true;
            } else if (!std::strcmp(a, "--expect-failure")) {
                expect_failure = true;
            } else if (!std::strcmp(a, "--replay")) {
                replay = value();
            } else {
                fatal("unknown option '%s'", a);
            }
        }

        if (replay) {
            FuzzCase c = parseRepro(replay);
            CoverageMap cov;
            RunResult res = runCase(c, &cov);
            if (res.failed) {
                std::printf("repro REPRODUCES:\n%s",
                            res.detail.c_str());
                return 1;
            }
            std::printf("repro does not reproduce (machine clean)\n");
            return 0;
        }

        CoverageMap coverage;
        std::vector<FuzzCase> corpus;
        unsigned failures = 0;
        Rng mut_rng(base_seed ^ 0xf0220edULL);

        for (unsigned i = 0; i < seeds; ++i) {
            FuzzCase c;
            // Once a corpus exists, alternate fresh seeds with
            // mutations of coverage-increasing ancestors.
            if (!corpus.empty() && i % 2) {
                c = mutateCase(
                    corpus[mut_rng.below(corpus.size())], mut_rng);
                c.defect = defect;
            } else {
                c = freshCase(base_seed + i, defect);
            }

            CoverageMap local;
            RunResult res = runCase(c, &local);
            if (coverage.countNew(local) > 0) {
                coverage.merge(local);
                corpus.push_back(c);
            }

            if (!res.failed)
                continue;
            ++failures;
            std::printf("case %u (seed %llu) FAILED:\n%s", i,
                        static_cast<unsigned long long>(c.seed),
                        res.detail.c_str());

            FuzzCase small = shrinkCase(c);
            RunResult small_res = runCase(small, nullptr);
            std::size_t insts = caseInstructions(small);
            std::printf("shrunk to %zu instructions "
                        "(streams=%u length=%u)\n",
                        insts, small.opts.streams, small.opts.length);
            if (insts <= 32)
                std::printf("shrink target met "
                            "(%zu <= 32 instructions)\n",
                            insts);

            std::filesystem::create_directories(out_dir);
            std::string path =
                std::string(out_dir) + "/repro-" +
                std::to_string(small.seed) + ".txt";
            std::ofstream out(path);
            if (!out)
                fatal("cannot write '%s'", path.c_str());
            out << reproText(small, small_res.detail);
            std::printf("wrote %s\n", path.c_str());
        }

        std::printf("FUZZ: %u cases, %u failures, coverage %zu/%zu "
                    "points, corpus %zu\n",
                    seeds, failures, coverage.pointsHit(),
                    coverage.pointsTotal(), corpus.size());
        if (expect_failure)
            return failures > 0 ? 0 : 1;
        return failures > 0 ? 1 : 0;
    } catch (const FatalError &) {
        return 1;
    }
}
