/**
 * @file
 * disc-fuzz: coverage-guided differential fuzzer for the DISC1
 * pipeline model.
 *
 * Each fuzz case is a (seed, options) pair fed to the multi-stream
 * workload generator; the resulting program runs on the pipelined
 * Machine under the invariant checker and is then compared, stream by
 * stream, against the sequential golden model. Cases with the batch
 * axis set additionally replay the same program through a MachineBatch
 * lane (no observer, so the lockstep hot lane can engage) and demand a
 * checkpoint bit-identical to the observed scalar run. Coverage is the
 * set of (opcode x pipeline event x active-stream-count) points the
 * run touched, plus one point per superblock bail reason and one per
 * batch peel reason the run triggered; cases that reach new points
 * join the corpus and later cases mutate corpus entries instead of
 * starting fresh.
 *
 * Usage:
 *   disc-fuzz [options]
 *     --seeds N         number of fuzz cases to run (default 100)
 *     --base-seed S     first seed value (default 1)
 *     --out DIR         where to write repro files (default ".")
 *     --max-cycles N    override the per-case cycle budget
 *     --defect NAME     seed a known machine defect; NAME is
 *                       "low-priority-vector"
 *     --expect-failure  exit 0 iff at least one failure was found
 *                       (for exercising the defect path in CI)
 *     --replay FILE     re-run one repro file and report the outcome
 *
 * On failure the case is shrunk — fewer streams, features dropped,
 * shorter body — while the failure persists, and the minimal repro is
 * written to DIR/repro-<seed>.txt as replayable key=value lines with
 * the failure and disassembly attached as comments.
 *
 * Exit status: 0 when no failures were found (or, under
 * --expect-failure, when one was); 1 otherwise. --replay exits 1 when
 * the failure reproduces.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/random.hh"
#include "isa/assembler.hh"
#include "sim/batch.hh"
#include "verify/differential.hh"
#include "verify/invariants.hh"

using namespace disc;

namespace
{

struct FuzzCase
{
    std::uint64_t seed = 1;
    GenOptions opts;
    bool defect = false;
    /** Run with the event-skip fast-forward enabled (coverage axis). */
    bool fastForward = true;
    /** Run through the micro-op dispatch tables (coverage axis). */
    bool useUops = true;
    /** Run with the superblock translation tier (coverage axis). */
    bool useSuperblock = true;
    /** Replay through a MachineBatch lane and diff (coverage axis). */
    bool useBatch = false;
};

struct RunResult
{
    bool failed = false;
    std::string detail;
};

Cycle g_max_cycles = 0;

RunResult
runCase(const FuzzCase &c, CoverageMap *cov)
{
    MultiStreamProgram msp = generateMultiStream(c.seed, c.opts);
    MachineConfig cfg;
    cfg.fastForward = c.fastForward;
    cfg.uopDispatch = c.useUops;
    cfg.superblockExec = c.useSuperblock;
    MachineRig rig(msp, cfg);
    if (c.defect)
        rig.machine().interrupts().setDefectLowPriorityVector(true);

    InvariantChecker chk(rig.machine());
    if (cov)
        chk.setCoverage(cov);
    rig.machine().setObserver(&chk);
    rig.start();
    rig.machine().run(g_max_cycles ? g_max_cycles : rig.cycleBudget());

    if (cov) {
        const MachineStats &st = rig.machine().stats();
        for (unsigned b = 0; b < kNumSbBails; ++b)
            if (st.superblockBails[b] > 0)
                cov->recordBail(static_cast<SbBail>(b));
    }

    DiffOutcome out;
    out.machineIdle = rig.machine().idle();
    out.divergences = compareWithReference(rig);

    RunResult res;
    res.failed = !out.ok() || !chk.ok();
    if (res.failed)
        res.detail = out.summary() + chk.report();

    if (c.useBatch) {
        // Replay without an observer so the lockstep hot lane can
        // engage; the batched machine's checkpoint must reproduce the
        // observed scalar run's bit for bit.
        MachineRig brig(msp, cfg);
        if (c.defect)
            brig.machine().interrupts().setDefectLowPriorityVector(
                true);
        brig.start();
        MachineBatch mb(1);
        mb.add(&brig.machine());
        mb.run(g_max_cycles ? g_max_cycles : brig.cycleBudget());
        if (cov) {
            const BatchStats &bs = mb.stats();
            for (unsigned p = 0; p < kNumBatchPeels; ++p)
                if (bs.peels[p] > 0)
                    cov->recordPeel(static_cast<BatchPeel>(p));
        }
        if (brig.machine().saveState() != rig.machine().saveState()) {
            res.failed = true;
            res.detail +=
                "batched execution diverged from scalar stepping "
                "(checkpoint mismatch)\n";
        }
    }
    return res;
}

bool
stillFails(const FuzzCase &c)
{
    return runCase(c, nullptr).failed;
}

/** Body size of a case's program, excluding the vector table. */
std::size_t
caseInstructions(const FuzzCase &c)
{
    return generateMultiStream(c.seed, c.opts).program.code.size() -
           kVectorTableEnd;
}

/**
 * Greedy shrink: every reduction step regenerates the whole program
 * (cases are pure functions of seed+options) and is kept only while
 * the failure persists.
 */
FuzzCase
shrinkCase(FuzzCase c)
{
    while (c.opts.streams > 1) {
        FuzzCase t = c;
        --t.opts.streams;
        if (!stillFails(t))
            break;
        c = t;
    }
    for (bool GenOptions::*feature :
         {&GenOptions::useDevices, &GenOptions::useInterrupts}) {
        if (c.opts.*feature) {
            FuzzCase t = c;
            t.opts.*feature = false;
            if (stillFails(t))
                c = t;
        }
    }
    if (c.useBatch) {
        // Prefer a repro that fails on the scalar path alone, without
        // the batched replay.
        FuzzCase t = c;
        t.useBatch = false;
        if (stillFails(t))
            c = t;
    }
    if (c.fastForward) {
        // Prefer a repro that fails in plain per-cycle stepping too.
        FuzzCase t = c;
        t.fastForward = false;
        if (stillFails(t))
            c = t;
    }
    if (c.useSuperblock) {
        // Prefer a repro that fails in the plain per-cycle uop path:
        // drop the superblock tier before touching the uop tables,
        // since disabling the tables disables the tier too.
        FuzzCase t = c;
        t.useSuperblock = false;
        if (stillFails(t))
            c = t;
    }
    if (c.useUops) {
        // Likewise prefer one that fails through the legacy switch.
        FuzzCase t = c;
        t.useUops = false;
        if (stillFails(t))
            c = t;
    }
    bool progress = true;
    while (progress && c.opts.length > 1) {
        progress = false;
        for (unsigned cand :
             {c.opts.length / 2, c.opts.length - 1}) {
            if (cand < 1 || cand >= c.opts.length)
                continue;
            FuzzCase t = c;
            t.opts.length = cand;
            if (stillFails(t)) {
                c = t;
                progress = true;
                break;
            }
        }
    }
    return c;
}

std::string
reproText(const FuzzCase &c, const std::string &detail)
{
    MultiStreamProgram msp = generateMultiStream(c.seed, c.opts);
    std::ostringstream out;
    out << "# disc-fuzz repro (replay with: disc-fuzz --replay FILE)\n";
    out << "seed=" << c.seed << "\n";
    out << "streams=" << c.opts.streams << "\n";
    out << "length=" << c.opts.length << "\n";
    out << "interrupts=" << (c.opts.useInterrupts ? 1 : 0) << "\n";
    out << "devices=" << (c.opts.useDevices ? 1 : 0) << "\n";
    out << "latency=" << c.opts.deviceLatency << "\n";
    out << "defect=" << (c.defect ? 1 : 0) << "\n";
    out << "fastforward=" << (c.fastForward ? 1 : 0) << "\n";
    out << "uops=" << (c.useUops ? 1 : 0) << "\n";
    out << "superblock=" << (c.useSuperblock ? 1 : 0) << "\n";
    out << "batch=" << (c.useBatch ? 1 : 0) << "\n";
    out << "# instructions="
        << msp.program.code.size() - kVectorTableEnd << "\n";
    out << "# failure:\n";
    std::istringstream lines(detail);
    for (std::string line; std::getline(lines, line);)
        out << "#   " << line << "\n";
    out << "# disassembly:\n";
    std::istringstream dis(disassemble(msp.program));
    for (std::string line; std::getline(dis, line);)
        out << "#   " << line << "\n";
    return out.str();
}

FuzzCase
parseRepro(const char *path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open '%s'", path);
    FuzzCase c;
    for (std::string line; std::getline(in, line);) {
        if (line.empty() || line[0] == '#')
            continue;
        std::size_t eq = line.find('=');
        if (eq == std::string::npos)
            fatal("bad repro line '%s'", line.c_str());
        std::string key = line.substr(0, eq);
        std::uint64_t val =
            std::strtoull(line.c_str() + eq + 1, nullptr, 0);
        if (key == "seed")
            c.seed = val;
        else if (key == "streams")
            c.opts.streams = static_cast<unsigned>(val);
        else if (key == "length")
            c.opts.length = static_cast<unsigned>(val);
        else if (key == "interrupts")
            c.opts.useInterrupts = val != 0;
        else if (key == "devices")
            c.opts.useDevices = val != 0;
        else if (key == "latency")
            c.opts.deviceLatency = static_cast<unsigned>(val);
        else if (key == "defect")
            c.defect = val != 0;
        else if (key == "fastforward")
            c.fastForward = val != 0;
        else if (key == "uops")
            c.useUops = val != 0;
        else if (key == "superblock")
            c.useSuperblock = val != 0;
        else if (key == "batch")
            c.useBatch = val != 0;
        else
            fatal("unknown repro key '%s'", key.c_str());
    }
    return c;
}

/** Derive deterministic option variation for a fresh seed. */
FuzzCase
freshCase(std::uint64_t seed, bool defect)
{
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
    FuzzCase c;
    c.seed = seed;
    c.defect = defect;
    c.opts.streams = 1 + static_cast<unsigned>(rng.below(kNumStreams));
    c.opts.length = 5 + static_cast<unsigned>(rng.below(200));
    c.opts.useInterrupts = !rng.chance(0.15);
    c.opts.useDevices = !rng.chance(0.15);
    c.opts.deviceLatency = static_cast<unsigned>(rng.below(7));
    c.fastForward = !rng.chance(0.25);
    c.useUops = !rng.chance(0.25);
    c.useSuperblock = !rng.chance(0.25);
    c.useBatch = !rng.chance(0.25);
    return c;
}

/** Mutate a corpus entry: jitter one knob, keep the rest. */
FuzzCase
mutateCase(const FuzzCase &base, Rng &rng)
{
    FuzzCase c = base;
    switch (rng.below(9)) {
      case 0:
        c.seed = rng.next64();
        break;
      case 1:
        c.opts.streams =
            1 + static_cast<unsigned>(rng.below(kNumStreams));
        break;
      case 2:
        c.opts.length =
            1 + static_cast<unsigned>(rng.below(220));
        break;
      case 3:
        c.opts.deviceLatency = static_cast<unsigned>(rng.below(7));
        break;
      case 4:
        c.fastForward = !c.fastForward;
        break;
      case 5:
        c.useUops = !c.useUops;
        break;
      case 6:
        c.useSuperblock = !c.useSuperblock;
        break;
      case 7:
        c.useBatch = !c.useBatch;
        break;
      default:
        c.opts.useInterrupts = !c.opts.useInterrupts;
        break;
    }
    return c;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        unsigned seeds = 100;
        std::uint64_t base_seed = 1;
        const char *out_dir = ".";
        const char *replay = nullptr;
        bool defect = false;
        bool expect_failure = false;

        for (int i = 1; i < argc; ++i) {
            const char *a = argv[i];
            auto value = [&]() -> const char * {
                if (i + 1 >= argc)
                    fatal("option %s needs a value", a);
                return argv[++i];
            };
            if (!std::strcmp(a, "--seeds")) {
                seeds = static_cast<unsigned>(
                    std::strtoul(value(), nullptr, 0));
            } else if (!std::strcmp(a, "--base-seed")) {
                base_seed = std::strtoull(value(), nullptr, 0);
            } else if (!std::strcmp(a, "--out")) {
                out_dir = value();
            } else if (!std::strcmp(a, "--max-cycles")) {
                g_max_cycles = std::strtoull(value(), nullptr, 0);
            } else if (!std::strcmp(a, "--defect")) {
                const char *name = value();
                if (std::strcmp(name, "low-priority-vector"))
                    fatal("unknown defect '%s'", name);
                defect = true;
            } else if (!std::strcmp(a, "--expect-failure")) {
                expect_failure = true;
            } else if (!std::strcmp(a, "--replay")) {
                replay = value();
            } else {
                fatal("unknown option '%s'", a);
            }
        }

        if (replay) {
            FuzzCase c = parseRepro(replay);
            CoverageMap cov;
            RunResult res = runCase(c, &cov);
            if (res.failed) {
                std::printf("repro REPRODUCES:\n%s",
                            res.detail.c_str());
                return 1;
            }
            std::printf("repro does not reproduce (machine clean)\n");
            return 0;
        }

        CoverageMap coverage;
        std::vector<FuzzCase> corpus;
        unsigned failures = 0;
        Rng mut_rng(base_seed ^ 0xf0220edULL);

        for (unsigned i = 0; i < seeds; ++i) {
            FuzzCase c;
            // Once a corpus exists, alternate fresh seeds with
            // mutations of coverage-increasing ancestors.
            if (!corpus.empty() && i % 2) {
                c = mutateCase(
                    corpus[mut_rng.below(corpus.size())], mut_rng);
                c.defect = defect;
            } else {
                c = freshCase(base_seed + i, defect);
            }

            CoverageMap local;
            RunResult res = runCase(c, &local);
            if (coverage.countNew(local) > 0) {
                coverage.merge(local);
                corpus.push_back(c);
            }

            if (!res.failed)
                continue;
            ++failures;
            std::printf("case %u (seed %llu) FAILED:\n%s", i,
                        static_cast<unsigned long long>(c.seed),
                        res.detail.c_str());

            FuzzCase small = shrinkCase(c);
            RunResult small_res = runCase(small, nullptr);
            std::size_t insts = caseInstructions(small);
            std::printf("shrunk to %zu instructions "
                        "(streams=%u length=%u)\n",
                        insts, small.opts.streams, small.opts.length);
            if (insts <= 32)
                std::printf("shrink target met "
                            "(%zu <= 32 instructions)\n",
                            insts);

            std::filesystem::create_directories(out_dir);
            std::string path =
                std::string(out_dir) + "/repro-" +
                std::to_string(small.seed) + ".txt";
            std::ofstream out(path);
            if (!out)
                fatal("cannot write '%s'", path.c_str());
            out << reproText(small, small_res.detail);
            std::printf("wrote %s\n", path.c_str());
        }

        std::printf("FUZZ: %u cases, %u failures, coverage %zu/%zu "
                    "points, corpus %zu\n",
                    seeds, failures, coverage.pointsHit(),
                    coverage.pointsTotal(), corpus.size());
        if (expect_failure)
            return failures > 0 ? 0 : 1;
        return failures > 0 ? 1 : 0;
    } catch (const FatalError &) {
        return 1;
    }
}
