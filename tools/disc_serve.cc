/**
 * @file
 * disc-serve: host many concurrent DISC1 simulation sessions behind
 * the binary wire protocol on loopback TCP.
 *
 * Usage:
 *   disc-serve [options]
 *     --port P           listen port on 127.0.0.1 (default: ephemeral;
 *                        the bound port is printed either way)
 *     --state-dir DIR    parked-session directory (default
 *                        disc-serve-state); a directory left by a
 *                        previous server resumes its sessions
 *     --max-resident N   sessions kept in memory at once (default 8)
 *     --queue-cap N      per-tenant queue bound (default 64)
 *     --tenants N        tenant count for an even share split
 *                        (default 4)
 *     --shares A,B,...   explicit per-tenant shares in sixteenths
 *                        (sum <= 16; overrides --tenants)
 *     --batch N          batch size cap (default: worker pool size)
 *     --workers N        worker shards: event loops + registries +
 *                        schedulers (default 1)
 *     --rebalance-ms N   rebalancer period moving cold sessions off
 *                        the hottest shard (default 0 = off)
 *
 * The server runs until SIGTERM/SIGINT or a Shutdown request, then
 * drains accepted requests, parks every live session and prints the
 * service counters. Exit status: 0 on a clean shutdown, 1 on startup
 * errors.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/logging.hh"
#include "serve/server.hh"

using namespace disc;
using namespace disc::serve;

namespace
{

volatile std::sig_atomic_t gotSignal = 0;

void
onSignal(int)
{
    gotSignal = 1;
}

std::vector<unsigned>
parseShares(const char *v)
{
    std::vector<unsigned> shares;
    const char *p = v;
    while (*p) {
        char *end = nullptr;
        unsigned long n = std::strtoul(p, &end, 10);
        if (end == p)
            fatal("--shares wants a comma-separated list of numbers");
        shares.push_back(static_cast<unsigned>(n));
        p = *end == ',' ? end + 1 : end;
    }
    if (shares.empty())
        fatal("--shares wants at least one share");
    return shares;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        ServerConfig cfg;
        for (int i = 1; i < argc; ++i) {
            const char *a = argv[i];
            auto value = [&]() -> const char * {
                if (i + 1 >= argc)
                    fatal("option %s needs a value", a);
                return argv[++i];
            };
            if (!std::strcmp(a, "--port")) {
                cfg.port = static_cast<std::uint16_t>(
                    std::strtoul(value(), nullptr, 0));
            } else if (!std::strcmp(a, "--state-dir")) {
                cfg.stateDir = value();
            } else if (!std::strcmp(a, "--max-resident")) {
                cfg.maxResident = static_cast<unsigned>(
                    std::strtoul(value(), nullptr, 0));
            } else if (!std::strcmp(a, "--queue-cap")) {
                cfg.queueCap = static_cast<unsigned>(
                    std::strtoul(value(), nullptr, 0));
            } else if (!std::strcmp(a, "--tenants")) {
                cfg.tenants = static_cast<unsigned>(
                    std::strtoul(value(), nullptr, 0));
            } else if (!std::strcmp(a, "--shares")) {
                cfg.shares = parseShares(value());
            } else if (!std::strcmp(a, "--batch")) {
                cfg.batchMax = static_cast<unsigned>(
                    std::strtoul(value(), nullptr, 0));
            } else if (!std::strcmp(a, "--workers")) {
                cfg.workers = static_cast<unsigned>(
                    std::strtoul(value(), nullptr, 0));
            } else if (!std::strcmp(a, "--rebalance-ms")) {
                cfg.rebalanceMs = static_cast<unsigned>(
                    std::strtoul(value(), nullptr, 0));
            } else {
                fatal("unknown option '%s'", a);
            }
        }
        if (!cfg.shares.empty())
            cfg.tenants = static_cast<unsigned>(cfg.shares.size());

        std::signal(SIGTERM, onSignal);
        std::signal(SIGINT, onSignal);
        std::signal(SIGPIPE, SIG_IGN);

        ServeServer server(cfg);
        server.start();
        // The port line is the tool's handshake: a launcher reads it
        // to find an ephemerally bound server.
        std::printf("disc-serve: listening on 127.0.0.1:%u\n",
                    server.port());
        std::fflush(stdout);

        while (!gotSignal && !server.shutdownRequested())
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));

        inform("shutting down: draining and parking sessions");
        server.requestStop();
        std::fputs(server.metricsText().c_str(), stdout);
        return 0;
    } catch (const FatalError &) {
        return 1;
    }
}
