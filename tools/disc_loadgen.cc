/**
 * @file
 * disc-loadgen: open-loop load generator and correctness checker for
 * disc-serve.
 *
 * Opens N sessions (each a distinct infinite-loop workload) over any
 * number of client connections — all multiplexed onto one epoll
 * EventLoop, so thousands of concurrent connections cost one thread —
 * then sweeps a list of arrival rates: at each rate it submits Run
 * requests on a fixed schedule — open-loop, so a slow server builds
 * queues instead of slowing the generator — and records per-request
 * latency from the *scheduled* arrival time (no coordinated
 * omission). A sampler polls the server's per-shard queue depths
 * through the sweep. Each sweep reports completed throughput,
 * p50/p95/p99 latency and the per-shard queue-depth high-water marks;
 * `--out` writes the sweep table as BENCH_serve.json (schema
 * "serve-2").
 *
 * With `--migrations R` the generator then drives R cross-shard
 * migrations (Query the digest, Migrate to a server-picked shard,
 * compare the returned pre-move digest) — every hop must be
 * digest-identical.
 *
 * Correctness: after the sweeps every session is queried for its run
 * digest; with `--check` the same workload is re-run in-process for
 * the served cycle count and the digests must match bit-for-bit —
 * the serving path adds batching, eviction, migration and restore,
 * but never a different result. `--resume` skips session creation so
 * a restarted server's resumed sessions can be driven and checked the
 * same way.
 *
 * Usage:
 *   disc-loadgen --port P [options]
 *     --sessions N       concurrent sessions (default 8)
 *     --tenants N        tenant count; session i belongs to tenant
 *                        i % N (must match the server; default 4)
 *     --conns N          client connections (default 16)
 *     --requests N       requests per sweep (default 2000)
 *     --rates A,B,...    arrival rates in req/s (default 200,400,800)
 *     --cycles N         cycle budget per Run request (default 200)
 *     --deadline-ms N    per-request deadline (0 = never shed)
 *     --migrations R     cross-shard migration rounds (default 0)
 *     --out FILE         write BENCH_serve.json-style results
 *     --check            verify digests against in-process runs
 *     --fail-on-shed     exit 1 if any request was refused or shed
 *     --board FILE       open every session with this board spec
 *                        (docs/BOARDS.md); --check composes the same
 *                        board offline
 *     --board-source FILE  assembly driving the board (replaces the
 *                        generated arithmetic workload)
 *     --resume           sessions already exist (restarted server)
 *     --tolerate-disconnect  a server that vanishes mid-run (e.g.
 *                        SIGTERM drills) ends the run cleanly with
 *                        exit 0 instead of failing
 *     --shutdown         send a Shutdown request when done
 *     --dump-workload K  print session K's assembly and exit
 *
 * Exit status: 0 on success, 1 on connection errors, digest
 * mismatches, or (with --fail-on-shed) any non-completed request.
 */

#include <algorithm>
#include <arpa/inet.h>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <mutex>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <unordered_map>
#include <vector>

#include "board/board.hh"
#include "common/logging.hh"
#include "isa/assembler.hh"
#include "serve/event_loop.hh"
#include "serve/proto.hh"
#include "sim/digest.hh"
#include "sim/machine.hh"
#include "sim/trace.hh"

using namespace disc;
using namespace disc::serve;

namespace
{

using Clock = std::chrono::steady_clock;

/** The session's workload: an endless loop with a per-session
 *  constant, so sessions have distinct yet deterministic states. */
std::string
workloadSource(unsigned index)
{
    return strprintf("; disc-loadgen workload, session %u\n"
                     ".org 0x20\n"
                     "main:\n"
                     "    ldi  r0, %u\n"
                     "    ldi  r1, 1\n"
                     "loop:\n"
                     "    add  r1, r1, r0\n"
                     "    mul  r2, r1, r0\n"
                     "    sub  r3, r2, r1\n"
                     "    jmp  loop\n",
                     index, 3 + index);
}

std::string
sessionName(unsigned index)
{
    return strprintf("s%u", index);
}

std::string
readFileText(const char *path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open '%s'", path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/**
 * One pipelined connection on the shared client EventLoop: replies
 * are routed to per-sequence completion handlers on the loop thread.
 * When the connection dies, every pending (and future) handler fires
 * with a synthesized "connection closed" ErrorResp, so no waiter can
 * hang on a vanished server.
 */
class Client
{
  public:
    using Handler = std::function<void(const Response &)>;

    explicit Client(EventLoop &loop)
        : loop_(&loop)
    {}

    bool
    connect(std::uint16_t port)
    {
        int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0)
            fatal("socket: %s", std::strerror(errno));
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(port);
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) < 0) {
            warn("connect 127.0.0.1:%u: %s", port,
                 std::strerror(errno));
            ::close(fd);
            return false;
        }
        ec_ = loop_->addConnection(
            fd,
            [this](const std::shared_ptr<EventConn> &,
                   std::vector<std::uint8_t> &payload) {
                onFrame(payload);
            },
            [this](const std::shared_ptr<EventConn> &) { onClosed(); });
        return true;
    }

    /** Send a request; @p on_reply runs on the loop thread (or
     *  inline, synthesized, when the connection is already dead). */
    void
    send(const Request &req, Handler on_reply)
    {
        {
            std::lock_guard<std::mutex> g(hmu_);
            if (!dead_) {
                handlers_.emplace(req.seq, std::move(on_reply));
                ec_->sendFrame(encodeRequest(req));
                return;
            }
        }
        Response resp;
        resp.type = MsgType::ErrorResp;
        resp.seq = req.seq;
        resp.error = "connection closed";
        on_reply(resp);
    }

    /** Send and block for the reply. */
    Response
    transact(const Request &req)
    {
        std::mutex m;
        std::condition_variable cv;
        bool done = false;
        Response out;
        send(req, [&](const Response &resp) {
            std::lock_guard<std::mutex> g(m);
            out = resp;
            done = true;
            cv.notify_one();
        });
        std::unique_lock<std::mutex> lk(m);
        cv.wait(lk, [&] { return done; });
        return out;
    }

    bool
    dead() const
    {
        std::lock_guard<std::mutex> g(hmu_);
        return dead_;
    }

  private:
    void
    onFrame(std::vector<std::uint8_t> &payload)
    {
        Response resp;
        try {
            resp = decodeResponse(payload);
        } catch (const FatalError &e) {
            warn("bad response frame: %s", e.what());
            return;
        }
        Handler h;
        {
            std::lock_guard<std::mutex> g(hmu_);
            auto it = handlers_.find(resp.seq);
            if (it == handlers_.end()) {
                warn("reply for unknown seq %llu",
                     static_cast<unsigned long long>(resp.seq));
                return;
            }
            h = std::move(it->second);
            handlers_.erase(it);
        }
        h(resp);
    }

    void
    onClosed()
    {
        std::unordered_map<std::uint64_t, Handler> orphans;
        {
            std::lock_guard<std::mutex> g(hmu_);
            dead_ = true;
            orphans.swap(handlers_);
        }
        for (auto &[seq, h] : orphans) {
            Response resp;
            resp.type = MsgType::ErrorResp;
            resp.seq = seq;
            resp.error = "connection closed";
            h(resp);
        }
    }

    EventLoop *loop_;
    std::shared_ptr<EventConn> ec_;

    mutable std::mutex hmu_;
    bool dead_ = false;
    std::unordered_map<std::uint64_t, Handler> handlers_;
};

/** One rate point's results. */
struct SweepResult
{
    unsigned rate = 0;
    std::uint64_t sent = 0;
    std::uint64_t completed = 0;
    std::uint64_t busyQueueFull = 0;
    std::uint64_t busyDeadline = 0;
    std::uint64_t busyDraining = 0;
    std::uint64_t errors = 0;
    double wallSec = 0;
    double throughput = 0;
    std::uint64_t p50 = 0, p95 = 0, p99 = 0, maxUs = 0;
    std::vector<std::uint64_t> shardQueueMax; ///< per-shard high water
};

/** Migration-drill tally. */
struct MigrationStats
{
    std::uint64_t attempted = 0;
    std::uint64_t ok = 0;
    std::uint64_t failed = 0;     ///< refused (busy) — not a bug
    std::uint64_t mismatches = 0; ///< digest changed across the hop
};

std::uint64_t
percentile(const std::vector<std::uint64_t> &sorted, double q)
{
    if (sorted.empty())
        return 0;
    std::size_t idx = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size()));
    if (idx >= sorted.size())
        idx = sorted.size() - 1;
    return sorted[idx];
}

std::vector<unsigned>
parseRates(const char *v)
{
    std::vector<unsigned> rates;
    const char *p = v;
    while (*p) {
        char *end = nullptr;
        unsigned long n = std::strtoul(p, &end, 10);
        if (end == p || n == 0)
            fatal("--rates wants comma-separated positive numbers");
        rates.push_back(static_cast<unsigned>(n));
        p = *end == ',' ? end + 1 : end;
    }
    if (rates.empty())
        fatal("--rates wants at least one rate");
    return rates;
}

void
writeJson(const std::string &path,
          const std::vector<SweepResult> &sweeps, unsigned sessions,
          unsigned tenants, unsigned conns, unsigned workers,
          unsigned cycles, std::uint64_t requests,
          const char *digest_check, const MigrationStats &mig,
          const std::vector<std::pair<std::string, std::uint64_t>>
              &server_counters)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write '%s'", path.c_str());
    out << "{\n"
        << "  \"schema\": \"serve-2\",\n"
        << strprintf("  \"sessions\": %u,\n", sessions)
        << strprintf("  \"tenants\": %u,\n", tenants)
        << strprintf("  \"conns\": %u,\n", conns)
        << strprintf("  \"workers\": %u,\n", workers)
        << strprintf("  \"cycles_per_request\": %u,\n", cycles)
        << strprintf("  \"requests_per_sweep\": %llu,\n",
                     static_cast<unsigned long long>(requests))
        << strprintf("  \"digest_check\": \"%s\",\n", digest_check)
        << strprintf(
               "  \"migrations\": {\"attempted\": %llu, \"ok\": %llu, "
               "\"failed\": %llu, \"digest_mismatches\": %llu},\n",
               static_cast<unsigned long long>(mig.attempted),
               static_cast<unsigned long long>(mig.ok),
               static_cast<unsigned long long>(mig.failed),
               static_cast<unsigned long long>(mig.mismatches))
        << "  \"sweeps\": [\n";
    for (std::size_t i = 0; i < sweeps.size(); ++i) {
        const SweepResult &s = sweeps[i];
        out << strprintf(
            "    {\"rate_rps\": %u, \"sent\": %llu, "
            "\"completed\": %llu, \"busy_queue_full\": %llu, "
            "\"busy_deadline\": %llu, \"busy_draining\": %llu, "
            "\"errors\": %llu, \"wall_sec\": %.3f, "
            "\"throughput_rps\": %.1f, \"latency_us\": "
            "{\"p50\": %llu, \"p95\": %llu, \"p99\": %llu, "
            "\"max\": %llu}, \"shard_queue_max\": [",
            s.rate, static_cast<unsigned long long>(s.sent),
            static_cast<unsigned long long>(s.completed),
            static_cast<unsigned long long>(s.busyQueueFull),
            static_cast<unsigned long long>(s.busyDeadline),
            static_cast<unsigned long long>(s.busyDraining),
            static_cast<unsigned long long>(s.errors), s.wallSec,
            s.throughput, static_cast<unsigned long long>(s.p50),
            static_cast<unsigned long long>(s.p95),
            static_cast<unsigned long long>(s.p99),
            static_cast<unsigned long long>(s.maxUs));
        for (std::size_t k = 0; k < s.shardQueueMax.size(); ++k)
            out << strprintf("%s%llu", k ? ", " : "",
                             static_cast<unsigned long long>(
                                 s.shardQueueMax[k]));
        out << strprintf("]}%s\n",
                         i + 1 < sweeps.size() ? "," : "");
    }
    out << "  ],\n"
        << "  \"server\": {";
    for (std::size_t i = 0; i < server_counters.size(); ++i)
        out << strprintf(
            "%s\"%s\": %llu", i ? ", " : "",
            server_counters[i].first.c_str(),
            static_cast<unsigned long long>(server_counters[i].second));
    out << "}\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        std::uint16_t port = 0;
        unsigned sessions = 8, tenants = 4, conns = 16;
        unsigned cycles = 200, deadline_ms = 0, migrations = 0;
        std::uint64_t requests = 2000;
        std::vector<unsigned> rates = {200, 400, 800};
        const char *out_path = nullptr;
        const char *board_path = nullptr;
        const char *board_source_path = nullptr;
        bool check = false, fail_on_shed = false, resume = false;
        bool want_shutdown = false, tolerate_disconnect = false;
        int dump_workload = -1;

        for (int i = 1; i < argc; ++i) {
            const char *a = argv[i];
            auto value = [&]() -> const char * {
                if (i + 1 >= argc)
                    fatal("option %s needs a value", a);
                return argv[++i];
            };
            if (!std::strcmp(a, "--port")) {
                port = static_cast<std::uint16_t>(
                    std::strtoul(value(), nullptr, 0));
            } else if (!std::strcmp(a, "--sessions")) {
                sessions = static_cast<unsigned>(
                    std::strtoul(value(), nullptr, 0));
            } else if (!std::strcmp(a, "--tenants")) {
                tenants = static_cast<unsigned>(
                    std::strtoul(value(), nullptr, 0));
            } else if (!std::strcmp(a, "--conns")) {
                conns = static_cast<unsigned>(
                    std::strtoul(value(), nullptr, 0));
            } else if (!std::strcmp(a, "--requests")) {
                requests = std::strtoull(value(), nullptr, 0);
            } else if (!std::strcmp(a, "--rates")) {
                rates = parseRates(value());
            } else if (!std::strcmp(a, "--cycles")) {
                cycles = static_cast<unsigned>(
                    std::strtoul(value(), nullptr, 0));
            } else if (!std::strcmp(a, "--deadline-ms")) {
                deadline_ms = static_cast<unsigned>(
                    std::strtoul(value(), nullptr, 0));
            } else if (!std::strcmp(a, "--migrations")) {
                migrations = static_cast<unsigned>(
                    std::strtoul(value(), nullptr, 0));
            } else if (!std::strcmp(a, "--out")) {
                out_path = value();
            } else if (!std::strcmp(a, "--board")) {
                board_path = value();
            } else if (!std::strcmp(a, "--board-source")) {
                board_source_path = value();
            } else if (!std::strcmp(a, "--check")) {
                check = true;
            } else if (!std::strcmp(a, "--fail-on-shed")) {
                fail_on_shed = true;
            } else if (!std::strcmp(a, "--resume")) {
                resume = true;
            } else if (!std::strcmp(a, "--tolerate-disconnect")) {
                tolerate_disconnect = true;
            } else if (!std::strcmp(a, "--shutdown")) {
                want_shutdown = true;
            } else if (!std::strcmp(a, "--dump-workload")) {
                dump_workload = static_cast<int>(
                    std::strtol(value(), nullptr, 0));
            } else {
                fatal("unknown option '%s'", a);
            }
        }
        std::string board_text =
            board_path ? readFileText(board_path) : std::string();
        std::string board_source = board_source_path
                                       ? readFileText(board_source_path)
                                       : std::string();
        auto sourceFor = [&](unsigned index) {
            return board_source_path ? board_source
                                     : workloadSource(index);
        };
        if (dump_workload >= 0) {
            std::fputs(
                sourceFor(static_cast<unsigned>(dump_workload)).c_str(),
                stdout);
            return 0;
        }
        if (port == 0)
            fatal("usage: disc-loadgen --port P [options]");
        if (sessions == 0 || tenants == 0 || conns == 0)
            fatal("--sessions/--tenants/--conns must be >= 1");

        // Thousands of connections need thousands of fds.
        rlimit rl{};
        if (::getrlimit(RLIMIT_NOFILE, &rl) == 0 &&
            rl.rlim_cur < rl.rlim_max) {
            rl.rlim_cur = rl.rlim_max;
            ::setrlimit(RLIMIT_NOFILE, &rl);
        }
        std::signal(SIGPIPE, SIG_IGN);

        EventLoop loop;
        loop.start("client");

        std::vector<std::unique_ptr<Client>> clients;
        for (unsigned c = 0; c < conns; ++c) {
            clients.push_back(std::make_unique<Client>(loop));
            if (!clients.back()->connect(port))
                fatal("cannot connect client %u of %u", c + 1, conns);
        }
        Client stats_client(loop); // sampler's own connection
        if (!stats_client.connect(port))
            fatal("cannot connect the stats client");
        inform("connected %u client connection(s)", conns);
        auto clientFor = [&](unsigned session) -> Client & {
            return *clients[session % conns];
        };
        std::atomic<std::uint64_t> seq{1};

        auto serverLost = [&]() -> bool {
            return stats_client.dead() || clients[0]->dead();
        };
        auto bailIfTolerated = [&](const char *phase) -> bool {
            if (tolerate_disconnect && serverLost()) {
                inform("server went away during %s (tolerated)",
                       phase);
                return true;
            }
            return false;
        };

        // --- open (or re-find) the sessions ---------------------------
        for (unsigned s = 0; s < sessions; ++s) {
            Request req;
            req.seq = seq.fetch_add(1);
            req.tenant = static_cast<TenantId>(s % tenants);
            req.session = sessionName(s);
            if (resume) {
                req.type = MsgType::QueryReq;
            } else {
                req.type = MsgType::OpenReq;
                req.source = sourceFor(s);
                req.board = board_text;
            }
            Response resp = clientFor(s).transact(req);
            if (resp.type == MsgType::ErrorResp)
                fatal("session %s: %s", req.session.c_str(),
                      resp.error.c_str());
        }
        inform("%s %u sessions across %u tenants, %u connections",
               resume ? "resumed" : "opened", sessions, tenants,
               conns);

        // --- rate sweeps ----------------------------------------------
        std::vector<SweepResult> sweeps;
        for (unsigned rate : rates) {
            SweepResult sw;
            sw.rate = rate;
            std::mutex smu;
            std::vector<std::uint64_t> lat_us;
            std::condition_variable scv;
            std::uint64_t outstanding = 0;

            // Queue-depth sampler: poll Stats on a dedicated
            // connection and keep the per-shard high-water marks.
            std::atomic<bool> sampling{true};
            std::vector<std::uint64_t> shard_max;
            std::thread sampler([&] {
                while (sampling.load()) {
                    Request r;
                    r.type = MsgType::StatsReq;
                    r.seq = seq.fetch_add(1);
                    Response st = stats_client.transact(r);
                    if (st.type != MsgType::StatsResp)
                        return; // server gone; sweep will notice
                    for (const auto &[name, v] : st.counters) {
                        unsigned shard = 0;
                        if (std::sscanf(name.c_str(), "shard%u_queued",
                                        &shard) == 1 &&
                            name == strprintf("shard%u_queued",
                                              shard)) {
                            if (shard_max.size() <= shard)
                                shard_max.resize(shard + 1, 0);
                            shard_max[shard] =
                                std::max(shard_max[shard], v);
                        }
                    }
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(20));
                }
            });

            auto interval = std::chrono::nanoseconds(
                1000000000ull / rate);
            Clock::time_point start = Clock::now();
            for (std::uint64_t i = 0; i < requests; ++i) {
                // Open-loop: the i-th request is due at a fixed time
                // regardless of how previous ones fared. Kernel sleeps
                // overshoot by a millisecond-plus under load, and the
                // overshoot lands directly in the measured latency
                // (timed from `due`) — worst at low rates, where every
                // request sleeps the full interval. Sleep coarsely to
                // just short of the deadline and spin the tail.
                constexpr auto kSleepSlack =
                    std::chrono::microseconds(200);
                Clock::time_point due = start + i * interval;
                if (due - Clock::now() > kSleepSlack)
                    std::this_thread::sleep_until(due - kSleepSlack);
                while (Clock::now() < due) {
                    // spin: the residual is below timer granularity
                }
                unsigned s = static_cast<unsigned>(i % sessions);
                Request req;
                req.type = MsgType::RunReq;
                req.seq = seq.fetch_add(1);
                req.tenant = static_cast<TenantId>(s % tenants);
                req.deadlineMs = deadline_ms;
                req.session = sessionName(s);
                req.maxCycles = cycles;
                req.stopWhenIdle = false;
                {
                    std::lock_guard<std::mutex> g(smu);
                    ++outstanding;
                }
                ++sw.sent;
                // Spread the *request stream* over every connection
                // (sessions and connections vary independently, so a
                // thousand connections all carry traffic).
                Client &cl = *clients[i % conns];
                cl.send(req, [&, due](const Response &resp) {
                    std::uint64_t us = static_cast<std::uint64_t>(
                        std::chrono::duration_cast<
                            std::chrono::microseconds>(Clock::now() -
                                                       due)
                            .count());
                    std::lock_guard<std::mutex> g(smu);
                    if (resp.type == MsgType::RunResp) {
                        ++sw.completed;
                        lat_us.push_back(us);
                    } else if (resp.type == MsgType::BusyResp) {
                        if (resp.busy == BusyReason::QueueFull)
                            ++sw.busyQueueFull;
                        else if (resp.busy == BusyReason::Deadline)
                            ++sw.busyDeadline;
                        else
                            ++sw.busyDraining;
                    } else {
                        ++sw.errors;
                    }
                    --outstanding;
                    scv.notify_one();
                });
            }
            {
                std::unique_lock<std::mutex> lk(smu);
                scv.wait(lk, [&] { return outstanding == 0; });
            }
            sampling.store(false);
            sampler.join();
            sw.shardQueueMax = std::move(shard_max);
            sw.wallSec = std::chrono::duration<double>(Clock::now() -
                                                       start)
                             .count();
            sw.throughput = sw.wallSec > 0
                                ? static_cast<double>(sw.completed) /
                                      sw.wallSec
                                : 0;
            std::sort(lat_us.begin(), lat_us.end());
            sw.p50 = percentile(lat_us, 0.50);
            sw.p95 = percentile(lat_us, 0.95);
            sw.p99 = percentile(lat_us, 0.99);
            sw.maxUs = lat_us.empty() ? 0 : lat_us.back();
            std::printf("rate=%-6u sent=%llu completed=%llu "
                        "busy=%llu shed=%llu errors=%llu "
                        "throughput=%.1f/s p50=%lluus p95=%lluus "
                        "p99=%lluus\n",
                        sw.rate,
                        static_cast<unsigned long long>(sw.sent),
                        static_cast<unsigned long long>(sw.completed),
                        static_cast<unsigned long long>(
                            sw.busyQueueFull + sw.busyDraining),
                        static_cast<unsigned long long>(sw.busyDeadline),
                        static_cast<unsigned long long>(sw.errors),
                        sw.throughput,
                        static_cast<unsigned long long>(sw.p50),
                        static_cast<unsigned long long>(sw.p95),
                        static_cast<unsigned long long>(sw.p99));
            sweeps.push_back(std::move(sw));
            if (bailIfTolerated("a rate sweep"))
                return 0;
        }

        // --- migration drills -----------------------------------------
        MigrationStats mig;
        for (unsigned r = 0; r < migrations; ++r) {
            unsigned s = r % sessions;
            Client &cl = *clients[r % conns];
            Request q;
            q.type = MsgType::QueryReq;
            q.seq = seq.fetch_add(1);
            q.tenant = static_cast<TenantId>(s % tenants);
            q.session = sessionName(s);
            Response before = cl.transact(q);
            if (before.type != MsgType::QueryResp) {
                if (bailIfTolerated("the migration drill"))
                    return 0;
                fatal("pre-migration query %s failed: %s",
                      q.session.c_str(), before.error.c_str());
            }
            Request m;
            m.type = MsgType::MigrateReq;
            m.seq = seq.fetch_add(1);
            m.tenant = static_cast<TenantId>(s % tenants);
            m.session = sessionName(s);
            m.targetShard = kAnyShard;
            Response moved = cl.transact(m);
            ++mig.attempted;
            if (moved.type != MsgType::MigrateResp) {
                if (bailIfTolerated("the migration drill"))
                    return 0;
                ++mig.failed;
                continue;
            }
            if (moved.digest != before.digest) {
                warn("session %s: digest %016llx before migration, "
                     "%016llx after (shard %u)",
                     m.session.c_str(),
                     static_cast<unsigned long long>(before.digest),
                     static_cast<unsigned long long>(moved.digest),
                     moved.shard);
                ++mig.mismatches;
            } else {
                ++mig.ok;
            }
        }
        if (migrations > 0)
            std::printf("migrations: attempted=%llu ok=%llu "
                        "failed=%llu digest_mismatches=%llu\n",
                        static_cast<unsigned long long>(mig.attempted),
                        static_cast<unsigned long long>(mig.ok),
                        static_cast<unsigned long long>(mig.failed),
                        static_cast<unsigned long long>(
                            mig.mismatches));

        // --- digest verification --------------------------------------
        const char *digest_check = "skipped";
        bool mismatch = mig.mismatches > 0;
        for (unsigned s = 0; s < sessions; ++s) {
            Request req;
            req.type = MsgType::QueryReq;
            req.seq = seq.fetch_add(1);
            req.tenant = static_cast<TenantId>(s % tenants);
            req.session = sessionName(s);
            Response resp = clientFor(s).transact(req);
            if (resp.type != MsgType::QueryResp) {
                if (bailIfTolerated("digest verification"))
                    return 0;
                fatal("query %s failed: %s", req.session.c_str(),
                      resp.error.c_str());
            }
            // Printed digests are comparable with
            // `disc-run --digest --free-run --cycles <cycles>` on the
            // same workload (--dump-workload prints it).
            std::printf("session %s: digest=%016llx cycles=%llu\n",
                        req.session.c_str(),
                        static_cast<unsigned long long>(resp.digest),
                        static_cast<unsigned long long>(
                            resp.totalCycles));
            if (!check)
                continue;
            // Re-run the same workload in-process for the served
            // cycle count; state and trace must match bit-for-bit.
            // Board composition mirrors the server's build() exactly:
            // attach, load, stream 0, then board start lines.
            Program prog = assemble(sourceFor(s));
            Machine m;
            Board board = buildBoard(parseBoardSpec(
                board_text, board_path ? board_path : "<none>"));
            board.attachTo(m);
            m.load(prog);
            ExecTrace trace(65536);
            m.setExecTrace(&trace);
            m.startStream(0, prog.hasSymbol("main")
                                 ? prog.symbol("main")
                                 : 0);
            board.startStreams(m, prog);
            m.run(resp.totalCycles, false);
            std::uint64_t local = runDigest(m, trace);
            if (local != resp.digest) {
                warn("session %s: served digest %016llx != offline "
                     "%016llx after %llu cycles",
                     req.session.c_str(),
                     static_cast<unsigned long long>(resp.digest),
                     static_cast<unsigned long long>(local),
                     static_cast<unsigned long long>(resp.totalCycles));
                mismatch = true;
            }
        }
        if (check) {
            digest_check = mismatch ? "mismatch" : "ok";
            std::printf("digest check: %s (%u sessions)\n",
                        digest_check, sessions);
        }

        // --- server counters ------------------------------------------
        Request stats_req;
        stats_req.type = MsgType::StatsReq;
        stats_req.seq = seq.fetch_add(1);
        Response stats = stats_client.transact(stats_req);
        unsigned workers = 1;
        for (const auto &[name, valuev] : stats.counters) {
            std::printf("server: %s=%llu\n", name.c_str(),
                        static_cast<unsigned long long>(valuev));
            if (name == "workers")
                workers = static_cast<unsigned>(valuev);
        }

        if (out_path)
            writeJson(out_path, sweeps, sessions, tenants, conns,
                      workers, cycles, requests, digest_check, mig,
                      stats.counters);

        if (want_shutdown) {
            Request req;
            req.type = MsgType::ShutdownReq;
            req.seq = seq.fetch_add(1);
            clients[0]->transact(req);
        }
        loop.stop();

        if (mismatch)
            return 1;
        if (fail_on_shed) {
            for (const SweepResult &sw : sweeps) {
                if (sw.completed != sw.sent) {
                    warn("--fail-on-shed: rate %u completed %llu of "
                         "%llu",
                         sw.rate,
                         static_cast<unsigned long long>(sw.completed),
                         static_cast<unsigned long long>(sw.sent));
                    return 1;
                }
            }
        }
        return 0;
    } catch (const FatalError &) {
        return 1;
    }
}
